package datasets

import (
	"math"
	"math/rand"
)

// The generators below synthesize each Table 2 dataset from its documented
// structure. Shared conventions: n is the requested length; positions of
// structural features are expressed as fractions of n so scaled-down
// instances keep their shape; rng is the only randomness source.

// frac returns the index at fraction f of an n-point series.
func frac(n int, f float64) int {
	i := int(f * float64(n))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// genTaxi reproduces the NYC taxi series of Figure 1: 30-minute passenger
// counts over 75 days with strong daily (48-point) and weekly (336-point)
// periodicity and a sustained dip during Thanksgiving week.
func genTaxi(n int, rng *rand.Rand) []float64 {
	perDay := float64(n) / 75.0 // 48 at the default size
	xs := make([]float64, n)
	dipLo, dipHi := frac(n, 0.72), frac(n, 0.8133)
	for i := range xs {
		t := float64(i)
		day := t / perDay
		hour := math.Mod(day, 1) * 24
		// Two daily peaks (commute hours), overnight trough.
		daily := 0.9*gaussBump(hour, 8.5, 2.0) + 1.1*gaussBump(hour, 18.5, 2.5) - 0.8*gaussBump(hour, 4, 1.8)
		// Weekends run ~20% lower.
		weekday := int(day) % 7
		level := 1.0
		if weekday >= 5 {
			level = 0.8
		}
		base := 14000.0
		v := base*level + 9000*daily + 600*rng.NormFloat64()
		if i >= dipLo && i < dipHi {
			v *= 0.72 // Thanksgiving-week dip
		}
		xs[i] = v
	}
	return xs
}

// genTemp reproduces the England monthly temperature record: a 12-point
// annual cycle around ~9C with a warming trend in the final fifth of the
// record (Figure 3 / B.3).
func genTemp(n int, rng *rand.Rand) []float64 {
	xs := make([]float64, n)
	warmStart := frac(n, 0.80)
	for i := range xs {
		season := 6.5 * math.Sin(2*math.Pi*(float64(i%12)-3.5)/12)
		trend := 0.0
		if i >= warmStart {
			trend = 1.6 * float64(i-warmStart) / float64(n-warmStart)
		}
		xs[i] = 9.2 + season + trend + 1.3*rng.NormFloat64()
	}
	return xs
}

// genSine reproduces the Keogh noisy sine: unit sine with a 32-point
// period, except for a short region oscillating at double rate (Table 2:
// "anomaly that is half the usual period").
func genSine(n int, rng *rand.Rand) []float64 {
	xs := make([]float64, n)
	aLo, aHi := frac(n, 0.40), frac(n, 0.46)
	phase := 0.0
	for i := range xs {
		period := 32.0
		if i >= aLo && i < aHi {
			period = 16.0
		}
		phase += 2 * math.Pi / period
		xs[i] = math.Sin(phase) + 0.25*rng.NormFloat64()
	}
	return xs
}

// genEEG reproduces an ECG-like excerpt: sharp QRS-like pulses at a
// quasi-regular ~150-point beat interval with low-amplitude noise, plus a
// premature-ventricular-contraction-like wide inverted beat in the labeled
// region (Figure B.5).
func genEEG(n int, rng *rand.Rand) []float64 {
	xs := make([]float64, n)
	// Baseline wander (respiration and electrode drift): a slow mean-
	// reverting walk. Without it the aggregated series is dominated by the
	// PVC spike alone and no smoothing window is kurtosis-feasible.
	wander := 0.0
	for i := range xs {
		wander = 0.999*wander + 0.012*rng.NormFloat64()
		xs[i] = 0.08*rng.NormFloat64() + 0.8*wander
	}
	aLo, aHi := frac(n, 0.55), frac(n, 0.60)
	beat := 150.0
	pos := 30.0 + 10*rng.Float64()
	for int(pos) < n {
		center := int(pos)
		inAnomaly := center >= aLo && center < aHi
		if inAnomaly {
			// PVC: wide, inverted, high-amplitude complex. Its width (not
			// just its depth) is what survives pixel-aware aggregation and
			// keeps the kurtosis constraint satisfiable.
			addPulse(xs, center, 60, -2.4)
			addPulse(xs, center+30, 40, 1.1)
		} else {
			// Normal beat: narrow spike with small flanking dips.
			addPulse(xs, center-6, 5, -0.25)
			addPulse(xs, center, 4, 1.8)
			addPulse(xs, center+7, 6, -0.35)
			addPulse(xs, center+32, 12, 0.45) // T-wave
		}
		pos += beat + 6*rng.NormFloat64()
	}
	return xs
}

// genPower reproduces the Dutch research facility's 15-minute power demand
// over 1997: high weekday daytime load, low nights and weekends, seasonal
// drift, day-to-day amplitude variation, a Christmas/New-Year shutdown at
// the end of the year, and the labeled mid-week Ascension holiday dip
// (Figure B.7). The secondary structure matters: it is what keeps ASAP's
// kurtosis constraint binding, bounding the chosen window near a week as
// in the paper, instead of letting month-long averages flatten the year.
func genPower(n int, rng *rand.Rand) []float64 {
	perDay := 96.0 // 15-minute sampling
	xs := make([]float64, n)
	holLo, holHi := frac(n, 0.40), frac(n, 0.425)
	xmasLo := frac(n, 0.965)
	dayAmp := 1.0
	for i := range xs {
		day := float64(i) / perDay
		hour := math.Mod(day, 1) * 24
		weekday := int(day) % 7
		if hour < 0.25 { // redraw once per day
			dayAmp = 1 + 0.15*rng.NormFloat64()
		}
		working := weekday < 5
		amp := dayAmp
		if i >= holLo && i < holHi {
			working = false // Ascension Thursday + bridge days: full shutdown
		}
		if i >= xmasLo {
			amp *= 0.55 // holiday season: reduced staffing, partial load
		}
		// Mild seasonal swing: more demand in winter (year starts Jan 1).
		season := 1 + 0.08*math.Cos(2*math.Pi*float64(i)/float64(n))
		load := 650.0 * season
		if working && hour >= 7 && hour <= 19 {
			load += 1450 * amp * season * (0.75 + 0.25*math.Sin(math.Pi*(hour-7)/12))
		}
		xs[i] = load + 60*rng.NormFloat64()
	}
	return xs
}

// genGasSensor reproduces the UCI chemical-sensor trace: a multi-hour
// recording with stepwise gas-exposure plateaus, sensor drift, a fast
// periodic modulation, and measurement noise.
func genGasSensor(n int, rng *rand.Rand) []float64 {
	xs := make([]float64, n)
	// Exposure steps: ~40 plateaus across the recording.
	steps := 40
	levels := make([]float64, steps+1)
	for i := range levels {
		levels[i] = 300 + 400*rng.Float64()
	}
	stepLen := n/steps + 1
	for i := range xs {
		step := i / stepLen
		if step > steps {
			step = steps
		}
		// Smooth transition into each plateau.
		into := float64(i%stepLen) / float64(stepLen)
		level := levels[step]
		if step > 0 {
			level = levels[step-1] + (levels[step]-levels[step-1])*sigmoid(12*(into-0.15))
		}
		drift := 30 * math.Sin(2*math.Pi*float64(i)/float64(n))
		modulation := 18 * math.Sin(2*math.Pi*float64(i)/97) // fast carrier
		xs[i] = level + drift + modulation + 6*rng.NormFloat64()
	}
	return xs
}

// genTraffic reproduces four months of 5-minute vehicle counts between two
// points: a dominant daily cycle with commute peaks and weekly structure.
func genTraffic(n int, rng *rand.Rand) []float64 {
	perDay := 288.0
	xs := make([]float64, n)
	for i := range xs {
		day := float64(i) / perDay
		hour := math.Mod(day, 1) * 24
		weekday := int(day) % 7
		level := 1.0
		if weekday >= 5 {
			level = 0.65
		}
		flow := 80*gaussBump(hour, 8, 1.5) + 95*gaussBump(hour, 17.5, 2.0) + 25*gaussBump(hour, 13, 3.5)
		xs[i] = math.Max(0, 20+level*flow+8*rng.NormFloat64())
	}
	return xs
}

// genMachineTemp reproduces the NAB industrial machine temperature: a
// slowly wandering operating temperature with mild daily structure and a
// collapse shortly before the end (the component failure, Figure C.2d).
func genMachineTemp(n int, rng *rand.Rand) []float64 {
	xs := make([]float64, n)
	perDay := float64(n) / 70.0
	failLo, failHi := frac(n, 0.90), frac(n, 0.94)
	wander := 0.0
	for i := range xs {
		wander += 0.02 * rng.NormFloat64()
		wander *= 0.9995 // mean-reverting drift
		daily := 1.2 * math.Sin(2*math.Pi*float64(i)/perDay)
		v := 85 + 8*wander + daily + 0.8*rng.NormFloat64()
		if i >= failLo && i < failHi {
			prog := float64(i-failLo) / float64(failHi-failLo)
			v -= 18 * math.Sin(math.Pi*prog) // dip and partial recovery
		}
		xs[i] = v
	}
	return xs
}

// genTwitterAAPL reproduces the NAB Twitter mention-volume series: a low,
// mildly periodic baseline punctuated by a handful of extreme spikes
// (product announcements). Its very high kurtosis is why both exhaustive
// search and ASAP leave it unsmoothed (Figure C.1).
func genTwitterAAPL(n int, rng *rand.Rand) []float64 {
	xs := make([]float64, n)
	perDay := float64(n) / 61.0
	for i := range xs {
		daily := 0.25 * math.Sin(2*math.Pi*float64(i)/perDay)
		xs[i] = math.Max(0, 110*(1+daily)+18*rng.NormFloat64())
	}
	// One dominant announcement spike (the labeled anomaly) plus a few
	// smaller ones: each a sharp 1-3 sample burst.
	spike := func(center int, height float64) {
		for o := -2; o <= 2; o++ {
			i := center + o
			if i >= 0 && i < n {
				xs[i] += height * math.Exp(-float64(o*o)/1.5)
			}
		}
	}
	spike(frac(n, 0.3525), 6200)
	spike(frac(n, 0.12), 2400)
	spike(frac(n, 0.57), 1800)
	spike(frac(n, 0.83), 2900)
	return xs
}

// genRampTraffic reproduces one month of 5-minute freeway-ramp car counts:
// a clean 288-point daily cycle with count noise.
func genRampTraffic(n int, rng *rand.Rand) []float64 {
	perDay := 288.0
	xs := make([]float64, n)
	for i := range xs {
		hour := math.Mod(float64(i)/perDay, 1) * 24
		flow := 22*gaussBump(hour, 7.5, 1.8) + 18*gaussBump(hour, 16.5, 2.5) + 6*gaussBump(hour, 12, 4)
		xs[i] = math.Max(0, 2+flow+2.2*rng.NormFloat64())
	}
	return xs
}

// genSimDaily reproduces the NAB simulated two-week series: fourteen
// near-identical days except one whose pattern is flattened.
func genSimDaily(n int, rng *rand.Rand) []float64 {
	perDay := float64(n) / 14.0
	xs := make([]float64, n)
	aLo, aHi := frac(n, 0.50), frac(n, 0.5714)
	for i := range xs {
		phase := 2 * math.Pi * float64(i) / perDay
		v := 50 + 20*math.Sin(phase) + 6*math.Sin(2*phase) + 1.5*rng.NormFloat64()
		if i >= aLo && i < aHi {
			v = 50 + 4*math.Sin(phase) + 1.5*rng.NormFloat64() // flat day
		}
		xs[i] = v
	}
	return xs
}

// gaussBump is a Gaussian bump centered at mu (in hours) with width sigma,
// evaluated on a 24-hour circle.
func gaussBump(hour, mu, sigma float64) float64 {
	d := math.Abs(hour - mu)
	if d > 12 {
		d = 24 - d
	}
	return math.Exp(-d * d / (2 * sigma * sigma))
}

// addPulse adds a Gaussian pulse of the given half-width and amplitude
// centered at index c.
func addPulse(xs []float64, c, halfWidth int, amp float64) {
	lo, hi := c-3*halfWidth, c+3*halfWidth
	if lo < 0 {
		lo = 0
	}
	if hi >= len(xs) {
		hi = len(xs) - 1
	}
	w := float64(halfWidth)
	for i := lo; i <= hi; i++ {
		d := float64(i - c)
		xs[i] += amp * math.Exp(-d*d/(2*w*w))
	}
}

// sigmoid is the logistic function.
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Package render rasterizes time series into binary pixel grids and
// computes the pixel-error metric used in Appendix B.1 (Table 4) to compare
// ASAP against pixel-preserving techniques such as M4.
//
// The model follows the M4 line of work: a plot is the set of pixels an
// ideal line renderer would ink when drawing the polyline through the
// plotted points on a width x height canvas, with the y-range fixed by the
// reference (original) series so that smoothed and raw plots share a
// coordinate system. The pixel error of technique T is the fraction of
// pixels in which raster(T) differs from raster(original).
package render

import (
	"errors"
	"fmt"
	"math"

	"github.com/asap-go/asap/internal/baselines"
)

// ErrCanvas reports invalid canvas geometry.
var ErrCanvas = errors.New("render: invalid canvas")

// Raster is a binary pixel grid in row-major order.
type Raster struct {
	Width  int
	Height int
	bits   []bool
}

// NewRaster returns an empty raster of the given dimensions.
func NewRaster(width, height int) (*Raster, error) {
	if width < 1 || height < 1 {
		return nil, fmt.Errorf("%w: %dx%d", ErrCanvas, width, height)
	}
	return &Raster{Width: width, Height: height, bits: make([]bool, width*height)}, nil
}

// At reports whether pixel (x, y) is inked. Out-of-range coordinates are
// un-inked.
func (r *Raster) At(x, y int) bool {
	if x < 0 || x >= r.Width || y < 0 || y >= r.Height {
		return false
	}
	return r.bits[y*r.Width+x]
}

// set inks a pixel, ignoring out-of-range coordinates (a clipped line
// simply does not ink outside the canvas).
func (r *Raster) set(x, y int) {
	if x < 0 || x >= r.Width || y < 0 || y >= r.Height {
		return
	}
	r.bits[y*r.Width+x] = true
}

// InkedPixels returns the number of inked pixels.
func (r *Raster) InkedPixels() int {
	n := 0
	for _, b := range r.bits {
		if b {
			n++
		}
	}
	return n
}

// Viewport fixes the data-to-canvas mapping so multiple renders share
// coordinates.
type Viewport struct {
	XMin, XMax float64
	YMin, YMax float64
}

// ViewportFor computes the viewport that exactly frames the given points.
// Degenerate ranges (all x or all y equal) are widened symmetrically so
// the mapping stays invertible.
func ViewportFor(pts []baselines.Point) (Viewport, error) {
	if len(pts) == 0 {
		return Viewport{}, errors.New("render: no points")
	}
	v := Viewport{XMin: pts[0].X, XMax: pts[0].X, YMin: pts[0].Y, YMax: pts[0].Y}
	for _, p := range pts[1:] {
		v.XMin = math.Min(v.XMin, p.X)
		v.XMax = math.Max(v.XMax, p.X)
		v.YMin = math.Min(v.YMin, p.Y)
		v.YMax = math.Max(v.YMax, p.Y)
	}
	if v.XMax == v.XMin {
		v.XMin, v.XMax = v.XMin-0.5, v.XMax+0.5
	}
	if v.YMax == v.YMin {
		v.YMin, v.YMax = v.YMin-0.5, v.YMax+0.5
	}
	return v, nil
}

// Draw rasterizes the polyline through pts onto a width x height canvas
// under the given viewport, using Bresenham's line algorithm between
// consecutive points.
func Draw(pts []baselines.Point, width, height int, vp Viewport) (*Raster, error) {
	r, err := NewRaster(width, height)
	if err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return r, nil
	}
	px := func(p baselines.Point) (int, int) {
		fx := (p.X - vp.XMin) / (vp.XMax - vp.XMin)
		fy := (p.Y - vp.YMin) / (vp.YMax - vp.YMin)
		x := int(math.Round(fx * float64(width-1)))
		// y axis points up in data space, down in raster space.
		y := int(math.Round((1 - fy) * float64(height-1)))
		return x, y
	}
	x0, y0 := px(pts[0])
	r.set(x0, y0)
	for _, p := range pts[1:] {
		x1, y1 := px(p)
		bresenham(r, x0, y0, x1, y1)
		x0, y0 = x1, y1
	}
	return r, nil
}

// bresenham inks the line from (x0,y0) to (x1,y1) inclusive.
func bresenham(r *Raster, x0, y0, x1, y1 int) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 >= x1 {
		sx = -1
	}
	if y0 >= y1 {
		sy = -1
	}
	err := dx + dy
	for {
		r.set(x0, y0)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// PixelError returns the fraction of the reference raster's inked pixels
// that differ between the two rasters: |a XOR b| / |a OR b|. This
// normalization (Jaccard distance of the ink sets) matches the relative
// pixel-error numbers of Table 4: identical plots score 0, disjoint plots
// score 1.
func PixelError(a, b *Raster) (float64, error) {
	if a.Width != b.Width || a.Height != b.Height {
		return 0, fmt.Errorf("%w: %dx%d vs %dx%d", ErrCanvas, a.Width, a.Height, b.Width, b.Height)
	}
	var diff, union int
	for i := range a.bits {
		ai, bi := a.bits[i], b.bits[i]
		if ai || bi {
			union++
			if ai != bi {
				diff++
			}
		}
	}
	if union == 0 {
		return 0, nil
	}
	return float64(diff) / float64(union), nil
}

// TechniquePixelError renders the original series and the technique's
// output in the shared viewport of the original and returns their pixel
// error — the per-cell computation behind Table 4.
func TechniquePixelError(tech baselines.Technique, xs []float64, width, height int) (float64, error) {
	orig := baselines.PointsFromSeries(xs)
	vp, err := ViewportFor(orig)
	if err != nil {
		return 0, err
	}
	ref, err := Draw(orig, width, height, vp)
	if err != nil {
		return 0, err
	}
	pts, err := baselines.Apply(tech, xs, width)
	if err != nil {
		return 0, err
	}
	got, err := Draw(pts, width, height, vp)
	if err != nil {
		return 0, err
	}
	return PixelError(ref, got)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

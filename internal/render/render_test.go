package render

import (
	"math"
	"math/rand"
	"testing"

	"github.com/asap-go/asap/internal/baselines"
)

func TestNewRasterValidation(t *testing.T) {
	if _, err := NewRaster(0, 5); err == nil {
		t.Error("zero width should error")
	}
	if _, err := NewRaster(5, -1); err == nil {
		t.Error("negative height should error")
	}
	r, err := NewRaster(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.InkedPixels() != 0 {
		t.Error("fresh raster should be blank")
	}
}

func TestAtOutOfRange(t *testing.T) {
	r, _ := NewRaster(2, 2)
	if r.At(-1, 0) || r.At(0, -1) || r.At(2, 0) || r.At(0, 2) {
		t.Error("out-of-range At should be false")
	}
}

func TestDrawHorizontalLine(t *testing.T) {
	pts := []baselines.Point{{X: 0, Y: 1}, {X: 9, Y: 1}}
	vp := Viewport{XMin: 0, XMax: 9, YMin: 0, YMax: 2}
	r, err := Draw(pts, 10, 5, vp)
	if err != nil {
		t.Fatal(err)
	}
	// y=1 maps to the middle row (row 2 of 0..4).
	for x := 0; x < 10; x++ {
		if !r.At(x, 2) {
			t.Errorf("pixel (%d,2) not inked", x)
		}
	}
	if r.InkedPixels() != 10 {
		t.Errorf("inked %d pixels, want 10", r.InkedPixels())
	}
}

func TestDrawDiagonal(t *testing.T) {
	pts := []baselines.Point{{X: 0, Y: 0}, {X: 9, Y: 9}}
	vp := Viewport{XMin: 0, XMax: 9, YMin: 0, YMax: 9}
	r, err := Draw(pts, 10, 10, vp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !r.At(i, 9-i) {
			t.Errorf("diagonal pixel (%d,%d) not inked", i, 9-i)
		}
	}
}

func TestDrawContinuity(t *testing.T) {
	// A rasterized polyline must be 8-connected: every inked column of a
	// function plot connects to the next column within one pixel run.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	pts := baselines.PointsFromSeries(xs)
	vp, err := ViewportFor(pts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Draw(pts, 100, 50, vp)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < r.Width; x++ {
		found := false
		for y := 0; y < r.Height; y++ {
			if r.At(x, y) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("column %d has no inked pixel — line not continuous", x)
		}
	}
}

func TestViewportFor(t *testing.T) {
	pts := []baselines.Point{{X: 1, Y: -2}, {X: 5, Y: 7}}
	vp, err := ViewportFor(pts)
	if err != nil {
		t.Fatal(err)
	}
	if vp.XMin != 1 || vp.XMax != 5 || vp.YMin != -2 || vp.YMax != 7 {
		t.Errorf("viewport = %+v", vp)
	}
	// Degenerate ranges widen.
	flat, err := ViewportFor([]baselines.Point{{X: 2, Y: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if flat.XMax <= flat.XMin || flat.YMax <= flat.YMin {
		t.Errorf("degenerate viewport not widened: %+v", flat)
	}
	if _, err := ViewportFor(nil); err == nil {
		t.Error("empty points should error")
	}
}

func TestPixelErrorIdentity(t *testing.T) {
	pts := []baselines.Point{{X: 0, Y: 0}, {X: 9, Y: 5}}
	vp := Viewport{XMin: 0, XMax: 9, YMin: 0, YMax: 5}
	a, _ := Draw(pts, 10, 10, vp)
	b, _ := Draw(pts, 10, 10, vp)
	e, err := PixelError(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("identical rasters error = %v, want 0", e)
	}
}

func TestPixelErrorDisjoint(t *testing.T) {
	vp := Viewport{XMin: 0, XMax: 9, YMin: 0, YMax: 9}
	a, _ := Draw([]baselines.Point{{X: 0, Y: 0}, {X: 9, Y: 0}}, 10, 10, vp)
	b, _ := Draw([]baselines.Point{{X: 0, Y: 9}, {X: 9, Y: 9}}, 10, 10, vp)
	e, err := PixelError(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if e != 1 {
		t.Errorf("disjoint rasters error = %v, want 1", e)
	}
}

func TestPixelErrorBlank(t *testing.T) {
	a, _ := NewRaster(5, 5)
	b, _ := NewRaster(5, 5)
	e, err := PixelError(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Errorf("blank rasters error = %v, want 0", e)
	}
}

func TestPixelErrorDimensionMismatch(t *testing.T) {
	a, _ := NewRaster(5, 5)
	b, _ := NewRaster(6, 5)
	if _, err := PixelError(a, b); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestTechniquePixelErrorOrdering(t *testing.T) {
	// The Table 4 ordering: M4 (error-free by construction at matching
	// width) has near-zero error; ASAP distorts aggressively and must have
	// much higher error. This is the paper's point — ASAP optimizes
	// attention, not pixel fidelity.
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = math.Sin(2*math.Pi*float64(i)/200) + 0.4*rng.NormFloat64()
	}
	width, height := 400, 150

	m4Err, err := TechniquePixelError(baselines.TechM4, xs, width, height)
	if err != nil {
		t.Fatal(err)
	}
	asapErr, err := TechniquePixelError(baselines.TechASAP, xs, width, height)
	if err != nil {
		t.Fatal(err)
	}
	if m4Err > 0.15 {
		t.Errorf("M4 pixel error = %v, want near 0", m4Err)
	}
	if asapErr < 0.5 {
		t.Errorf("ASAP pixel error = %v, want large (ASAP distorts)", asapErr)
	}
	if asapErr <= m4Err {
		t.Errorf("expected ASAP error (%v) >> M4 error (%v)", asapErr, m4Err)
	}
}

func TestDrawEmptyPoints(t *testing.T) {
	r, err := Draw(nil, 10, 10, Viewport{XMin: 0, XMax: 1, YMin: 0, YMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.InkedPixels() != 0 {
		t.Error("drawing no points should ink nothing")
	}
}

func TestDrawClipsOutOfViewport(t *testing.T) {
	// Points outside the viewport must not panic; the line is clipped.
	pts := []baselines.Point{{X: -5, Y: -5}, {X: 15, Y: 15}}
	vp := Viewport{XMin: 0, XMax: 9, YMin: 0, YMax: 9}
	r, err := Draw(pts, 10, 10, vp)
	if err != nil {
		t.Fatal(err)
	}
	if r.InkedPixels() == 0 {
		t.Error("clipped diagonal should still ink in-viewport pixels")
	}
}

func BenchmarkDraw(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	pts := baselines.PointsFromSeries(xs)
	vp, _ := ViewportFor(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Draw(pts, 800, 300, vp); err != nil {
			b.Fatal(err)
		}
	}
}

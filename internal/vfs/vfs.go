// Package vfs is the minimal filesystem seam the write-ahead log's
// mutation path goes through. Production code uses OS (the real
// filesystem); tests wrap it with internal/faultfs to inject scripted
// I/O faults — failed fsyncs, torn writes, ENOSPC — deterministically.
// The seam lives in its own package so both the WAL and the fault
// injector can depend on it without an import cycle.
//
// The interface is deliberately narrow: only the operations whose
// failure the WAL must survive are behind it. Read-only serving paths
// (replica segment streaming) and open-time bookkeeping (wal.meta,
// directory scans, flock) stay on package os — faults there either
// fail Open outright or are covered by the record-level corruption
// tolerance in replay.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the slice of *os.File behavior the WAL's write path needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem mutations behind the WAL: segment and
// snapshot creation, appends (through File), fsync, atomic-rename
// publication, deletion, and the truncate used to cut an unsynced tail
// off a damaged active segment.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Return a bare nil, not a non-nil interface wrapping a nil
		// *os.File.
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }

package asap

// bench_test.go exposes every table and figure of the paper's evaluation
// as a testing.B benchmark, one per artifact, delegating to the
// internal/bench harness (quick configuration). Run all of them with
//
//	go test -bench=. -benchmem
//
// and a single one with e.g.
//
//	go test -bench=BenchmarkTable2BatchSearch
//
// For the full-size runs with printed paper-vs-measured tables, use
// cmd/asap-bench.

import (
	"testing"

	"github.com/asap-go/asap/internal/bench"
)

// runExperiment executes one registered experiment per benchmark
// iteration and reports rows produced as a sanity metric.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	cfg := bench.Config{Quick: true, Seed: bench.DefaultConfig.Seed}
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rows = 0
		for _, t := range tables {
			rows += len(t.Rows)
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkTable1Preaggregation regenerates Table 1: search-space
// reduction by device resolution on a 1M-point series.
func BenchmarkTable1Preaggregation(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2BatchSearch regenerates Table 2: window choice and
// candidate counts for ASAP vs exhaustive search on all 11 datasets.
func BenchmarkTable2BatchSearch(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable4PixelError regenerates Table 4: pixel error of ASAP, M4,
// Visvalingam–Whyatt and PAA800 on the user-study datasets.
func BenchmarkTable4PixelError(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFigure1TaxiPlots regenerates Figure 1: raw vs ASAP vs
// oversmoothed renderings of the Taxi series.
func BenchmarkFigure1TaxiPlots(b *testing.B) { runExperiment(b, "figure1") }

// BenchmarkFigure4Roughness regenerates Figure 4: roughness separates
// series that share mean and standard deviation.
func BenchmarkFigure4Roughness(b *testing.B) { runExperiment(b, "figure4") }

// BenchmarkFigure5Kurtosis regenerates Figure 5: kurtosis separates
// normal from Laplace at equal mean/variance.
func BenchmarkFigure5Kurtosis(b *testing.B) { runExperiment(b, "figure5") }

// BenchmarkFigure6UserStudy regenerates Figure 6: the simulated
// anomaly-identification study across seven visualization techniques.
func BenchmarkFigure6UserStudy(b *testing.B) { runExperiment(b, "figure6") }

// BenchmarkFigure7Preference regenerates Figure 7: the simulated visual
// preference study.
func BenchmarkFigure7Preference(b *testing.B) { runExperiment(b, "figure7") }

// BenchmarkFigure8SearchStrategies regenerates Figure 8: speed-up and
// roughness ratio of ASAP / binary / grid search vs exhaustive.
func BenchmarkFigure8SearchStrategies(b *testing.B) { runExperiment(b, "figure8") }

// BenchmarkFigure9Preagg regenerates Figure 9: the impact of pixel-aware
// preaggregation against the raw exhaustive baseline.
func BenchmarkFigure9Preagg(b *testing.B) { runExperiment(b, "figure9") }

// BenchmarkFigure10Streaming regenerates Figure 10: streaming throughput
// as a function of the refresh interval.
func BenchmarkFigure10Streaming(b *testing.B) { runExperiment(b, "figure10") }

// BenchmarkFigure11Factors regenerates Figure 11: the factor analysis and
// lesion study of ASAP's three optimizations.
func BenchmarkFigure11Factors(b *testing.B) { runExperiment(b, "figure11") }

// BenchmarkFigureA1RoughnessEstimate regenerates Figure A.1: accuracy of
// the Equation 5 roughness estimate.
func BenchmarkFigureA1RoughnessEstimate(b *testing.B) { runExperiment(b, "figureA1") }

// BenchmarkFigureA2Throughput regenerates Figure A.2: throughput with and
// without preaggregation.
func BenchmarkFigureA2Throughput(b *testing.B) { runExperiment(b, "figureA2") }

// BenchmarkFigureA3LinearBaselines regenerates Figure A.3: ASAP's runtime
// against the linear-time reducers PAA and M4.
func BenchmarkFigureA3LinearBaselines(b *testing.B) { runExperiment(b, "figureA3") }

// BenchmarkFigureB1Sensitivity regenerates Figure B.1: sensitivity of the
// study outcomes to the roughness and kurtosis targets.
func BenchmarkFigureB1Sensitivity(b *testing.B) { runExperiment(b, "figureB1") }

// BenchmarkFigureB2Smoothers regenerates Figure B.2: achieved roughness
// of alternative smoothing functions relative to SMA.
func BenchmarkFigureB2Smoothers(b *testing.B) { runExperiment(b, "figureB2") }

// BenchmarkFigureCPlots regenerates Figures C.1–C.2: raw vs ASAP
// renderings of the remaining datasets.
func BenchmarkFigureCPlots(b *testing.B) { runExperiment(b, "figureC") }

// --- Ablation benchmarks (DESIGN.md Section 5) ---

// BenchmarkAblationACF compares FFT-based and brute-force autocorrelation,
// the asymptotic optimization of Section 4.3.3.
func BenchmarkAblationACF(b *testing.B) {
	xs := make([]float64, 8192)
	for i := range xs {
		xs[i] = float64(i % 128)
	}
	b.Run("fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := benchACF(xs, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := benchACF(xs, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSeedWindow measures the streaming fast path: searching
// with and without the previous window as a seed.
func BenchmarkAblationSeedWindow(b *testing.B) {
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = sineAt(i, 100)
	}
	seed, err := Smooth(xs)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unseeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Smooth(xs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seeded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Smooth(xs, WithSeedWindow(seed.Window)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package asap

import (
	"math"
	"math/rand"
	"testing"
)

func taxiLike(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		daily := math.Sin(2 * math.Pi * float64(i) / 48)
		weekly := 0.3 * math.Sin(2*math.Pi*float64(i)/336)
		xs[i] = 100 + 30*daily + 10*weekly + 5*rng.NormFloat64()
	}
	// Sustained dip.
	for i := 7 * n / 10; i < 8*n/10; i++ {
		xs[i] *= 0.75
	}
	return xs
}

func TestSmoothDefault(t *testing.T) {
	xs := taxiLike(3600, 1)
	res, err := Smooth(xs, WithResolution(800))
	if err != nil {
		t.Fatal(err)
	}
	if res.Window < 2 {
		t.Errorf("window = %d, want > 1 on periodic data", res.Window)
	}
	if res.Roughness >= res.OriginalRoughness {
		t.Errorf("no smoothing achieved: %v >= %v", res.Roughness, res.OriginalRoughness)
	}
	if res.Kurtosis < res.OriginalKurtosis {
		t.Errorf("kurtosis constraint violated: %v < %v", res.Kurtosis, res.OriginalKurtosis)
	}
	if res.Ratio != 4 {
		t.Errorf("ratio = %d, want 4 (3600 points at 800 px)", res.Ratio)
	}
	if len(res.Values) == 0 {
		t.Error("empty smoothed output")
	}
}

func TestSmoothStrategies(t *testing.T) {
	xs := taxiLike(2400, 2)
	var exhaustive *Result
	for _, s := range []Strategy{ASAP, Exhaustive, Grid2, Grid10, Binary} {
		res, err := Smooth(xs, WithStrategy(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if s == Exhaustive {
			exhaustive = res
		}
		if res.Window < 1 {
			t.Errorf("%v: window %d", s, res.Window)
		}
	}
	asapRes, err := Smooth(xs, WithStrategy(ASAP))
	if err != nil {
		t.Fatal(err)
	}
	if asapRes.CandidatesTried >= exhaustive.CandidatesTried {
		t.Errorf("ASAP tried %d candidates, exhaustive %d",
			asapRes.CandidatesTried, exhaustive.CandidatesTried)
	}
}

func TestSmoothOptionValidation(t *testing.T) {
	xs := taxiLike(100, 3)
	if _, err := Smooth(xs, WithResolution(-1)); err == nil {
		t.Error("negative resolution should error")
	}
	if _, err := Smooth(xs, WithStrategy(Strategy(42))); err == nil {
		t.Error("unknown strategy should error")
	}
	if _, err := Smooth(xs, WithMaxWindow(-2)); err == nil {
		t.Error("negative max window should error")
	}
	if _, err := Smooth(xs, WithSeedWindow(-2)); err == nil {
		t.Error("negative seed window should error")
	}
	if _, err := Smooth([]float64{1, 2}); err == nil {
		t.Error("too-short input should error")
	}
}

func TestSmoothDoesNotMutateInput(t *testing.T) {
	xs := taxiLike(1000, 4)
	orig := append([]float64(nil), xs...)
	if _, err := Smooth(xs, WithResolution(200)); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatal("Smooth mutated its input")
		}
	}
}

func TestSeedWindowOption(t *testing.T) {
	xs := taxiLike(3600, 5)
	first, err := Smooth(xs, WithResolution(800))
	if err != nil {
		t.Fatal(err)
	}
	second, err := Smooth(xs, WithResolution(800), WithSeedWindow(first.Window))
	if err != nil {
		t.Fatal(err)
	}
	if second.Window != first.Window {
		t.Errorf("seeded run chose %d, unseeded %d", second.Window, first.Window)
	}
}

func TestMetricsHelpers(t *testing.T) {
	line := []float64{1, 2, 3, 4, 5}
	if r := Roughness(line); r != 0 {
		t.Errorf("line roughness = %v, want 0", r)
	}
	if k := Kurtosis([]float64{1, 1, 1}); k != 0 {
		t.Errorf("degenerate kurtosis = %v, want 0", k)
	}
	zs := ZScores([]float64{2, 4, 6})
	if math.Abs(zs[0]+zs[2]) > 1e-12 || zs[1] != 0 {
		t.Errorf("z-scores = %v", zs)
	}
}

func TestStrategyStrings(t *testing.T) {
	if ASAP.String() != "ASAP" || Exhaustive.String() != "Exhaustive" ||
		Binary.String() != "Binary" || Grid2.String() != "Grid2" || Grid10.String() != "Grid10" {
		t.Error("strategy names wrong")
	}
}

func TestStreamerEndToEnd(t *testing.T) {
	st, err := NewStreamer(StreamConfig{
		WindowPoints: 4800,
		Resolution:   480,
		RefreshEvery: 960,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ratio() != 10 {
		t.Errorf("ratio = %d, want 10", st.Ratio())
	}
	if st.Frame() != nil {
		t.Error("frame before data should be nil")
	}
	var frames int
	for _, x := range taxiLike(24000, 6) {
		if f := st.Push(x); f != nil {
			frames++
			if f.Sequence != frames {
				t.Fatalf("sequence %d at frame %d", f.Sequence, frames)
			}
			if len(f.Values) == 0 {
				t.Fatal("empty frame values")
			}
		}
	}
	if frames < 20 {
		t.Errorf("only %d frames from 24000 points at refresh 960", frames)
	}
	stats := st.Stats()
	if stats.RawPoints != 24000 || stats.Searches != frames {
		t.Errorf("stats = %+v", stats)
	}
	if st.Frame() == nil {
		t.Error("latest frame should be retained")
	}
}

func TestStreamerPushBatch(t *testing.T) {
	st, err := NewStreamer(StreamConfig{WindowPoints: 1000, Resolution: 100, RefreshEvery: 500})
	if err != nil {
		t.Fatal(err)
	}
	f := st.PushBatch(taxiLike(5000, 7))
	if f == nil {
		t.Fatal("no frame from batch")
	}
	if f.Window < 1 {
		t.Errorf("window = %d", f.Window)
	}
}

func TestStreamerConfigValidation(t *testing.T) {
	if _, err := NewStreamer(StreamConfig{WindowPoints: 2, Resolution: 100}); err == nil {
		t.Error("tiny window should error")
	}
	if _, err := NewStreamer(StreamConfig{WindowPoints: 100, Resolution: 0}); err == nil {
		t.Error("zero resolution should error")
	}
}

func TestStreamerStationaryKeepsWindow(t *testing.T) {
	st, err := NewStreamer(StreamConfig{WindowPoints: 9600, Resolution: 480, RefreshEvery: 2400})
	if err != nil {
		t.Fatal(err)
	}
	var reused int
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 60000; i++ {
		x := 100 + 30*math.Sin(2*math.Pi*float64(i)/480) + 5*rng.NormFloat64()
		if f := st.Push(x); f != nil && f.SeedReused {
			reused++
		}
	}
	if reused == 0 {
		t.Error("stationary stream never reused its window parameter")
	}
}

func BenchmarkSmooth3600At800(b *testing.B) {
	xs := taxiLike(3600, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Smooth(xs, WithResolution(800)); err != nil {
			b.Fatal(err)
		}
	}
}

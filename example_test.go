package asap_test

import (
	"fmt"
	"math"

	"github.com/asap-go/asap"
)

// ExampleSmooth smooths a noisy periodic series and reports the chosen
// window. With a clean sine the search locks onto the period.
func ExampleSmooth() {
	values := make([]float64, 2000)
	for i := range values {
		values[i] = math.Sin(2 * math.Pi * float64(i) / 100)
	}
	res, err := asap.Smooth(values)
	if err != nil {
		panic(err)
	}
	fmt.Println("window:", res.Window)
	fmt.Println("kurtosis preserved:", res.Kurtosis >= res.OriginalKurtosis)
	// Output:
	// window: 200
	// kurtosis preserved: true
}

// ExampleRoughness shows that a straight line has roughness exactly zero —
// the paper's definition of perfect smoothness.
func ExampleRoughness() {
	line := []float64{1, 2, 3, 4, 5, 6}
	jagged := []float64{1, 6, 1, 6, 1, 6}
	fmt.Println(asap.Roughness(line))
	fmt.Println(asap.Roughness(jagged) > 1)
	// Output:
	// 0
	// true
}

// ExampleNewStreamer runs the streaming operator over a short synthetic
// stream and prints how many frames were rendered.
func ExampleNewStreamer() {
	st, err := asap.NewStreamer(asap.StreamConfig{
		WindowPoints: 400,
		Resolution:   100,
		RefreshEvery: 200,
	})
	if err != nil {
		panic(err)
	}
	frames := 0
	for i := 0; i < 2000; i++ {
		if f := st.Push(math.Sin(2 * math.Pi * float64(i) / 40)); f != nil {
			frames++
			_ = f.Values
		}
	}
	fmt.Println("frames:", frames)
	// Output:
	// frames: 10
}

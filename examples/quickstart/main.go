// Quickstart: smooth a noisy periodic series with ASAP in a dozen lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/asap-go/asap"
)

func main() {
	// Four weeks of per-minute request rates: daily periodicity, noise,
	// and a sustained half-day slowdown on day 20 that the noise obscures.
	// (ASAP searches windows up to a tenth of the series, so give it
	// enough history to cover the daily period.)
	rng := rand.New(rand.NewSource(1))
	const perDay = 1440
	values := make([]float64, 28*perDay)
	for i := range values {
		daily := math.Sin(2 * math.Pi * float64(i%perDay) / perDay)
		values[i] = 1000 + 250*daily + 80*rng.NormFloat64()
		if i >= 20*perDay && i < 20*perDay+perDay/2 {
			values[i] *= 0.85 // the incident
		}
	}

	// One call: ASAP picks the smoothing window for an 800-pixel chart.
	res, err := asap.Smooth(values, asap.WithResolution(800))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input:   %d points, roughness %.1f\n", len(values), asap.Roughness(values))
	fmt.Printf("output:  %d points, roughness %.1f (window %d, preagg ratio %d)\n",
		len(res.Values), res.Roughness, res.Window, res.Ratio)
	fmt.Printf("search:  %d candidate windows evaluated\n", res.CandidatesTried)
	fmt.Printf("kurtosis preserved: %.2f -> %.2f (constraint: smoothed >= original)\n",
		res.OriginalKurtosis, res.Kurtosis)

	// The incident is a >2-sigma dip in the smoothed plot; find it.
	z := asap.ZScores(res.Values)
	worst, at := 0.0, 0
	for i, v := range z {
		if v < worst {
			worst, at = v, i
		}
	}
	frac := float64(at) / float64(len(z))
	fmt.Printf("largest deviation: %.1f sigma at %.0f%% of the window (incident was at ~72%%)\n",
		worst, frac*100)
}

// Comparison pits ASAP against the visualization baselines from the
// paper's evaluation (M4, Visvalingam–Whyatt, PAA, oversmoothing) on the
// Sine dataset — a noisy sine wave hiding a brief double-frequency anomaly
// — and reports each technique's roughness, kurtosis preservation, pixel
// error, and how well it exposes the anomaly region.
//
// Run with:
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/baselines"
	"github.com/asap-go/asap/internal/datasets"
	"github.com/asap-go/asap/internal/perception"
	"github.com/asap-go/asap/internal/render"
)

func main() {
	spec, ok := datasets.ByName("Sine")
	if !ok {
		log.Fatal("Sine dataset missing")
	}
	xs := spec.Generate(32).Values
	region := spec.AnomalyRegion(len(xs))
	fmt.Printf("dataset: %s (%d points); anomaly: %s (region %d of 5)\n\n",
		spec.Name, len(xs), spec.AnomalyText, region)

	fmt.Printf("%-12s %8s %8s %8s %10s %10s\n",
		"technique", "points", "rough", "kurt", "pixel-err", "prominence")
	for _, tech := range baselines.AllTechniques {
		pts, err := baselines.Apply(tech, xs, 800)
		if err != nil {
			log.Fatal(err)
		}
		ys := make([]float64, len(pts))
		for i, p := range pts {
			ys[i] = p.Y
		}
		pixErr, err := render.TechniquePixelError(tech, xs, 800, 300)
		if err != nil {
			log.Fatal(err)
		}
		prom, err := perception.Prominence(pts, region, 800)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8d %8.3f %8.2f %10.3f %10.2f\n",
			tech, len(pts), asap.Roughness(asap.ZScores(ys)), asap.Kurtosis(ys), pixErr, prom)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("- M4 wins pixel error (it is designed to look identical to the raw plot)")
	fmt.Println("- ASAP wins prominence (it is designed to highlight the anomaly), at high pixel error")
	fmt.Println("- that trade-off is the paper's core argument (Section 6)")
}

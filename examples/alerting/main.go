// Alerting demonstrates the paper's Section 7 extension on the Section 1
// motivating scenario: an electrical utility watches generator metrics for
// systematic shifts that stay below the critical alarm threshold. Raw
// thresholds miss the drift; a drift rule on raw data false-alarms on the
// daily cycle; the same rule on ASAP-smoothed frames catches exactly the
// real event.
//
// Run with:
//
//	go run ./examples/alerting
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/alert"
)

func main() {
	rng := rand.New(rand.NewSource(2026))
	const (
		perDay         = 288 // 5-minute readings
		days           = 40
		alarmThreshold = 80.0
	)
	n := perDay * days
	metric := make([]float64, n)
	driftStart := 33 * perDay
	for i := range metric {
		daily := 8 * math.Sin(2*math.Pi*float64(i%perDay)/perDay)
		drift := 0.0
		if i > driftStart { // bearing wear: slow temperature climb
			drift = 12 * float64(i-driftStart) / float64(n-driftStart)
		}
		metric[i] = 52 + daily + drift + 3*rng.NormFloat64()
	}

	// A classic threshold alarm never fires.
	crossed := 0
	for _, v := range metric {
		if v >= alarmThreshold {
			crossed++
		}
	}
	fmt.Printf("raw threshold alarm (>= %.0f): fired %d times over %d days\n",
		alarmThreshold, crossed, days)

	// Streaming ASAP + drift detector.
	st, err := asap.NewStreamer(asap.StreamConfig{
		WindowPoints: n,
		Resolution:   400,
		RefreshEvery: perDay / 2, // re-render twice a day
	})
	if err != nil {
		log.Fatal(err)
	}
	det, err := alert.New(alert.Config{DriftSigma: 2, SustainFraction: 0.03})
	if err != nil {
		log.Fatal(err)
	}

	for i, x := range metric {
		f := st.Push(x)
		if f == nil {
			continue
		}
		if a := det.Observe(f.Values, f.Sequence); a != nil {
			day := float64(i) / perDay
			fmt.Printf("ALERT at day %.1f: %s drift, severity %.1f sigma, sustained over %d plotted points (window %d)\n",
				day, a.Direction, a.Severity, a.RunLength, f.Window)
		}
	}

	alerts := det.Alerts()
	fmt.Printf("\ntotal drift alerts: %d (drift actually began on day %d)\n",
		len(alerts), driftStart/perDay)
	if len(alerts) > 0 {
		fmt.Println("the operator is paged days before the raw threshold would ever fire.")
	}
}

// Monitoring reproduces the Section 2 application-monitoring case study
// (Figure 2): an on-call engineer watches cluster CPU telemetry on a small
// screen. Raw 5-minute averages bury a usage spike in fluctuations; the
// streaming ASAP operator smooths each refresh so the spike stands out.
//
// Run with:
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"github.com/asap-go/asap"
)

// cpuStream simulates ten days of per-5-minute CPU utilization across a
// cluster: noisy daily load cycles plus a sustained spike on the last day
// (the incident of Figure 2).
func cpuStream(days int, rng *rand.Rand) []float64 {
	const perDay = 288
	xs := make([]float64, days*perDay)
	for i := range xs {
		daily := math.Sin(2 * math.Pi * float64(i%perDay) / perDay)
		xs[i] = 55 + 12*daily + 9*rng.NormFloat64()
		if i >= (days-1)*perDay+perDay/2 { // spike in the last half-day
			xs[i] += 25
		}
		if xs[i] < 0 {
			xs[i] = 0
		}
		if xs[i] > 100 {
			xs[i] = 100
		}
	}
	return xs
}

func sparkline(values []float64, width int) string {
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	step := len(values) / width
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(values); i += step {
		f := (values[i] - lo) / (hi - lo)
		b.WriteRune(ramp[int(f*float64(len(ramp)-1))])
	}
	return b.String()
}

func main() {
	rng := rand.New(rand.NewSource(7))
	data := cpuStream(10, rng)

	// A phone-sized dashboard: 375 px wide, refreshed every 4 hours of
	// data, always showing the last 10 days.
	st, err := asap.NewStreamer(asap.StreamConfig{
		WindowPoints: len(data),
		Resolution:   375,
		RefreshEvery: 48, // 4 hours at 5-minute samples
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("raw feed (last 10 days):")
	fmt.Println("  " + sparkline(data, 72))

	var last *asap.Frame
	for _, x := range data {
		if f := st.Push(x); f != nil {
			last = f
		}
	}
	if last == nil {
		log.Fatal("no frame rendered")
	}

	fmt.Println("ASAP dashboard view:")
	fmt.Println("  " + sparkline(last.Values, 72))
	fmt.Printf("window: %d aggregated points (%.1f hours of data per plotted point)\n",
		last.Window, float64(last.Window*st.Ratio())*5/60)
	fmt.Printf("roughness %.2f, kurtosis %.2f, %d refreshes, parameter reused on the last: %v\n",
		last.Roughness, last.Kurtosis, last.Sequence, last.SeedReused)

	// Verify the story quantitatively: in the smoothed view, the final
	// region is the most extreme deviation (the spike is visible).
	z := asap.ZScores(last.Values)
	maxZ, at := 0.0, 0
	for i, v := range z {
		if v > maxZ {
			maxZ, at = v, i
		}
	}
	fmt.Printf("peak deviation: +%.1f sigma at %.0f%% of the window (spike is in the final region)\n",
		maxZ, float64(at)/float64(len(z))*100)
}

// Historical reproduces the Section 2 historical-analysis case study
// (Figure 3): 248 years of monthly temperature readings whose seasonal
// swings hide a long-term warming trend. ASAP picks a multi-year window
// that removes the seasons and exposes the trend; the example writes an
// SVG comparing raw, ASAP, and oversmoothed views.
//
// Run with:
//
//	go run ./examples/historical
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/baselines"
	"github.com/asap-go/asap/internal/datasets"
	"github.com/asap-go/asap/internal/plot"
)

func main() {
	spec, ok := datasets.ByName("Temp")
	if !ok {
		log.Fatal("Temp dataset missing")
	}
	series := spec.Generate(1723)
	values := series.Values

	res, err := asap.Smooth(values, asap.WithResolution(800))
	if err != nil {
		log.Fatal(err)
	}
	over, err := baselines.Oversmooth(values)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset: %s — %d monthly readings over %s\n",
		spec.Name, len(values), spec.DurationLabel)
	fmt.Printf("ASAP window: %d months (%.1f years)\n",
		res.Window*res.Ratio, float64(res.Window*res.Ratio)/12)
	fmt.Printf("roughness: raw %.3f -> ASAP %.3f\n", res.OriginalRoughness, res.Roughness)

	// Quantify the story: the warming trend (last fifth of the record) is
	// invisible in raw z-scores but unambiguous after smoothing.
	report := func(name string, vals []float64) {
		z := asap.ZScores(vals)
		n := len(z)
		var early, late float64
		for _, v := range z[:n/5] {
			early += v
		}
		for _, v := range z[4*n/5:] {
			late += v
		}
		early /= float64(n / 5)
		late /= float64(n - 4*n/5)
		fmt.Printf("%-12s mean z first fifth: %+.2f, last fifth: %+.2f (gap %.2f sigma)\n",
			name, early, late, late-early)
	}
	report("raw", values)
	report("ASAP", res.Values)
	report("oversmooth", over)

	svg, err := plot.SVGSeries("Average Temperature in England (z-scores)", 960, 400,
		map[string][]float64{
			"original":   asap.ZScores(values),
			"ASAP":       asap.ZScores(res.Values),
			"oversmooth": asap.ZScores(over),
		}, []string{"original", "ASAP", "oversmooth"})
	if err != nil {
		log.Fatal(err)
	}
	out := "temp_england.svg"
	if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

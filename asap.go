package asap

import (
	"errors"

	"github.com/asap-go/asap/internal/core"
	"github.com/asap-go/asap/internal/stats"
)

// Strategy selects the window-search algorithm. The default, ASAP, is the
// paper's contribution; the others are the comparison strategies from its
// evaluation and are exposed for benchmarking and ablation.
type Strategy int

// Available strategies.
const (
	// ASAP searches autocorrelation peaks with pruning, then refines with
	// binary search (Algorithm 2).
	ASAP Strategy = iota
	// Exhaustive tries every candidate window.
	Exhaustive
	// Grid2 tries every second window.
	Grid2
	// Grid10 tries every tenth window.
	Grid10
	// Binary bisects on the kurtosis constraint.
	Binary
)

// String names the strategy as in the paper's figures.
func (s Strategy) String() string { return coreStrategy(s).String() }

func coreStrategy(s Strategy) core.Strategy {
	switch s {
	case Exhaustive:
		return core.StrategyExhaustive
	case Grid2:
		return core.StrategyGrid2
	case Grid10:
		return core.StrategyGrid10
	case Binary:
		return core.StrategyBinary
	default:
		return core.StrategyASAP
	}
}

// config carries the resolved options for Smooth.
type config struct {
	resolution int
	strategy   Strategy
	maxWindow  int
	seedWindow int
}

// Option customizes Smooth.
type Option func(*config) error

// WithResolution sets the target display width in pixels; ASAP will
// pre-aggregate the series so its search space is bounded by the display,
// not the data (Section 4.4 of the paper). Zero disables preaggregation.
func WithResolution(pixels int) Option {
	return func(c *config) error {
		if pixels < 0 {
			return errors.New("asap: negative resolution")
		}
		c.resolution = pixels
		return nil
	}
}

// WithStrategy overrides the search strategy (default ASAP).
func WithStrategy(s Strategy) Option {
	return func(c *config) error {
		if s < ASAP || s > Binary {
			return errors.New("asap: unknown strategy")
		}
		c.strategy = s
		return nil
	}
}

// WithMaxWindow bounds the candidate windows on the (pre-aggregated)
// series. Zero picks the paper's default of one tenth of the series
// length.
func WithMaxWindow(w int) Option {
	return func(c *config) error {
		if w < 0 {
			return errors.New("asap: negative max window")
		}
		c.maxWindow = w
		return nil
	}
}

// WithSeedWindow supplies a previously chosen window; if it still
// satisfies the kurtosis constraint it becomes the search's starting
// incumbent, pruning most of the space (the streaming fast path).
func WithSeedWindow(w int) Option {
	return func(c *config) error {
		if w < 0 {
			return errors.New("asap: negative seed window")
		}
		c.seedWindow = w
		return nil
	}
}

// Result is the outcome of a batch Smooth call.
type Result struct {
	// Values is the smoothed series: the simple moving average of the
	// (pre-aggregated) input with the chosen window.
	Values []float64
	// Window is the chosen SMA window, in pre-aggregated points. Window 1
	// means ASAP decided the series should not be smoothed (e.g. it
	// contains a few extreme outliers that averaging would erase).
	Window int
	// Ratio is the pixel-aware preaggregation ratio applied before the
	// search (1 when preaggregation was disabled or unnecessary).
	Ratio int
	// Roughness and Kurtosis describe Values.
	Roughness float64
	Kurtosis  float64
	// OriginalRoughness and OriginalKurtosis describe the series the
	// search ran on (after preaggregation).
	OriginalRoughness float64
	OriginalKurtosis  float64
	// CandidatesTried is the number of windows the search actually
	// smoothed and measured.
	CandidatesTried int
}

// Smooth selects and applies the ASAP smoothing window for values.
// The input is not modified. It returns an error for inputs shorter than
// four points or invalid options.
func Smooth(values []float64, opts ...Option) (*Result, error) {
	var c config
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	res, err := core.Smooth(values, core.SmoothOptions{
		Resolution: c.resolution,
		Strategy:   coreStrategy(c.strategy),
		MaxWindow:  c.maxWindow,
		SeedWindow: c.seedWindow,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Values:            res.Smoothed,
		Window:            res.Window,
		Ratio:             res.Ratio,
		Roughness:         res.Roughness,
		Kurtosis:          res.Kurtosis,
		OriginalRoughness: res.OriginalRoughness,
		OriginalKurtosis:  res.OriginalKurtosis,
		CandidatesTried:   res.Candidates,
	}, nil
}

// Roughness returns the paper's roughness measure for a series: the
// standard deviation of consecutive differences. Lower is smoother; a
// straight line scores exactly 0.
func Roughness(values []float64) float64 { return stats.Roughness(values) }

// Kurtosis returns the fourth standardized moment of the values, the
// paper's trend-preservation measure. Higher kurtosis means deviations
// are concentrated in rarer, more extreme excursions.
func Kurtosis(values []float64) float64 { return stats.Kurtosis(values) }

// ZScores returns the series normalized to zero mean and unit variance,
// the presentation form used in the paper's plots.
func ZScores(values []float64) []float64 { return stats.ZScores(values) }

GO ?= go

# Packages carrying the refresh-engine benchmark suite.
BENCH_PKGS = ./internal/fft ./internal/acf ./internal/stream
BENCH_PAT  = ^(BenchmarkRefresh|BenchmarkACFPlan|BenchmarkFFTPlan)$$

.PHONY: check vet build test race alloc-check bench bench-smoke fuzz fuzz-check failover-check clean clean-data

## check: the standard verify — vet, build, and the race-enabled suite.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## alloc-check: the refresh-engine allocation-regression tests, run
## without the race detector so the counts reflect production builds.
alloc-check:
	$(GO) test -run 'Alloc' -v $(BENCH_PKGS)

## bench: run the refresh-engine benchmark suite and (re)write the
## committed baseline BENCH_refresh.json.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchmem $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson | tee BENCH_refresh.json

## bench-smoke: one-iteration pass over the same benchmarks so the bench
## code cannot rot (used by CI; measures nothing).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchtime 1x $(BENCH_PKGS)

## failover-check: the replication acceptance suite under -race —
## primary → follower tailing → kill → promote, frames bit-identical —
## plus the WAL group-commit and segment-reader edge-case tests.
failover-check:
	$(GO) test -race -run 'Failover|Follower|DataDirLocking|BackgroundSnapshot' -v ./internal/server/
	$(GO) test -race -run 'GroupCommit|Manifest|LoadState|Cursor|RecordScanner|LockDir|MetaShards|ChainGap' ./internal/wal/

## fuzz: run the ingest line-protocol fuzzer for a short burst.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzIngestParse -fuzztime=30s ./internal/server/

## fuzz-check: replay every fuzz target's seed corpus as regular tests
## (no fuzzing engine; -fuzz must be per-package).
fuzz-check:
	$(GO) test -run Fuzz -fuzz='^$$' ./internal/server/
	$(GO) test -run Fuzz -fuzz='^$$' ./internal/csvio/
	$(GO) test -run Fuzz -fuzz='^$$' ./internal/wal/

clean:
	$(GO) clean ./...

## clean-data: remove WAL data directories left by local asap-server
## runs (-data-dir data).
clean-data:
	rm -rf data

GO ?= go

.PHONY: check vet build test race fuzz clean

## check: the standard verify — vet, build, and the race-enabled suite.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: run the ingest line-protocol fuzzer for a short burst.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzIngestParse -fuzztime=30s ./internal/server/

clean:
	$(GO) clean ./...

GO ?= go

# Packages carrying the refresh-engine + broadcast + metrics benchmark
# suite.
BENCH_PKGS = ./internal/fft ./internal/acf ./internal/stream ./internal/server ./internal/obs ./internal/obs/trace
BENCH_PAT  = ^(BenchmarkRefresh|BenchmarkACFPlan|BenchmarkFFTPlan|BenchmarkIncrementalACF|BenchmarkPushBatchCoalesced|BenchmarkBroadcastFanout|BenchmarkMetricsHotPath|BenchmarkTraceHotPath)$$

# bench-gate knobs: fractional ns/op+B/op growth, absolute allocs/op
# growth, and absolute B/op slack allowed over the committed
# BENCH_refresh.json baseline.
BENCH_TOLERANCE   ?= 0.25
BENCH_ALLOC_DRIFT ?= 0
BENCH_BYTE_SLACK  ?= 1024
# auto = gate ns/op only on the baseline's own hardware; CI passes
# `never` because virtualized runners share generic CPU strings without
# sharing clocks. allocs/op and B/op gate everywhere regardless.
BENCH_TIME_GATE   ?= auto

.PHONY: check vet build test race alloc-check obs-check trace-check bench bench-smoke bench-gate fuzz fuzz-check failover-check stream-check chaos-check clean clean-data

## check: the standard verify — vet, build, and the race-enabled suite.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## alloc-check: the refresh-engine allocation-regression tests, run
## without the race detector so the counts reflect production builds.
alloc-check:
	$(GO) test -run 'Alloc' -v $(BENCH_PKGS)

## obs-check: the observability acceptance suite under -race — the obs
## registry and exposition format, the /metrics catalog golden file,
## request-ID correlation, self-monitor end to end, the pprof listener,
## and the instrumentation allocation contract.
obs-check:
	$(GO) test -race -v ./internal/obs/
	$(GO) test -race -run 'Metrics|RequestID|StatsAggregate|SelfMonitor|Pprof' -v ./internal/server/

## trace-check: the tracing acceptance suite under -race — the span /
## traceparent / tail-sampling unit tests, plus the server end-to-end
## pipeline trace (ingest spans, replication join, /traces explorer),
## exemplar exposition, and slow-request breakdown tests.
trace-check:
	$(GO) test -race -v ./internal/obs/trace/
	$(GO) test -race -run 'Trace|Exemplar|SlowRequest' -v ./internal/server/

## bench: run the refresh-engine benchmark suite and (re)write the
## committed baseline BENCH_refresh.json.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchmem $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson | tee BENCH_refresh.json

## bench-smoke: one-iteration pass over the same benchmarks so the bench
## code cannot rot (used by CI; measures nothing).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchtime 1x $(BENCH_PKGS)

## bench-gate: the CI benchmark-regression gate. Reruns the suite and
## fails if any benchmark regressed against the committed baseline:
## allocs/op beyond BENCH_ALLOC_DRIFT always fail; ns/op beyond
## BENCH_TOLERANCE fails on the baseline's own hardware and is reported
## (not gated) elsewhere — CI runners don't share the baseline's clock.
## The fresh run lands in BENCH_fresh.json for artifact upload.
bench-gate:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchmem $(BENCH_PKGS) > bench-fresh.txt
	$(GO) run ./cmd/benchjson -baseline BENCH_refresh.json \
		-tolerance $(BENCH_TOLERANCE) -alloc-drift $(BENCH_ALLOC_DRIFT) \
		-byte-slack $(BENCH_BYTE_SLACK) -time-gate $(BENCH_TIME_GATE) \
		-o BENCH_fresh.json < bench-fresh.txt

## failover-check: the replication acceptance suite under -race —
## primary → follower tailing → kill → promote, frames bit-identical —
## plus the WAL group-commit and segment-reader edge-case tests.
failover-check:
	$(GO) test -race -run 'Failover|Follower|DataDirLocking|BackgroundSnapshot' -v ./internal/server/
	$(GO) test -race -run 'GroupCommit|Manifest|LoadState|Cursor|RecordScanner|LockDir|MetaShards|ChainGap' ./internal/wal/

## stream-check: the SSE acceptance suite under -race — broadcast
## fan-out (exactly-once, coalescing, eviction), the /stream endpoint
## end to end (resume, heartbeats, slow consumers, shutdown drain),
## and the replica manifest long-poll.
stream-check:
	$(GO) test -race -run 'Stream|Broadcast|LongPoll' -v ./internal/server/

## chaos-check: the fault-injection acceptance suite under -race — the
## scripted-fault filesystem itself, WAL degraded-mode recovery (fsync
## failure, ENOSPC mid-rotation, torn flushes, bounded reopen give-up,
## strict-mode rollback), the torn-write recovery matrix (truncate at
## every byte of the last record), and the server-level scenarios:
## degraded shard still serving reads/SSE with ingest 503 + Retry-After
## and /readyz (not /healthz) flipping, plus a flapping primary under a
## tailing follower that retries without ever resyncing.
chaos-check:
	$(GO) test -race -v ./internal/faultfs/
	$(GO) test -race -run 'Chaos|TornWriteMatrix' -v ./internal/wal/
	$(GO) test -race -run 'Chaos' -v ./internal/server/

## fuzz: run the ingest line-protocol fuzzer for a short burst.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzIngestParse -fuzztime=30s ./internal/server/

## fuzz-check: replay every fuzz target's seed corpus as regular tests
## (no fuzzing engine; -fuzz must be per-package).
fuzz-check:
	$(GO) test -run Fuzz -fuzz='^$$' ./internal/server/
	$(GO) test -run Fuzz -fuzz='^$$' ./internal/csvio/
	$(GO) test -run Fuzz -fuzz='^$$' ./internal/wal/
	$(GO) test -run Fuzz -fuzz='^$$' ./internal/obs/trace/

clean:
	$(GO) clean ./...
	rm -f bench-fresh.txt BENCH_fresh.json

## clean-data: remove WAL data directories left by local asap-server
## runs (-data-dir data).
clean-data:
	rm -rf data

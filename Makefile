GO ?= go

.PHONY: check vet build test race fuzz fuzz-check clean clean-data

## check: the standard verify — vet, build, and the race-enabled suite.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: run the ingest line-protocol fuzzer for a short burst.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzIngestParse -fuzztime=30s ./internal/server/

## fuzz-check: replay every fuzz target's seed corpus as regular tests
## (no fuzzing engine; -fuzz must be per-package).
fuzz-check:
	$(GO) test -run Fuzz -fuzz='^$$' ./internal/server/
	$(GO) test -run Fuzz -fuzz='^$$' ./internal/csvio/
	$(GO) test -run Fuzz -fuzz='^$$' ./internal/wal/

clean:
	$(GO) clean ./...

## clean-data: remove WAL data directories left by local asap-server
## runs (-data-dir data).
clean-data:
	rm -rf data

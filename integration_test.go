package asap

// Integration tests exercising the full pipeline across modules: dataset
// generation -> smoothing -> rendering -> simulated perception, plus
// determinism and robustness properties that only appear end-to-end.

import (
	"math"
	"math/rand"
	"testing"

	"github.com/asap-go/asap/internal/baselines"
	"github.com/asap-go/asap/internal/datasets"
	"github.com/asap-go/asap/internal/perception"
	"github.com/asap-go/asap/internal/render"
)

func TestPipelineAllDatasets(t *testing.T) {
	// Every catalog dataset must flow through the full batch pipeline and
	// satisfy the core invariants: kurtosis preserved, roughness not
	// increased, window within bounds.
	for _, spec := range datasets.Catalog() {
		n := spec.N
		if n > 100_000 {
			n = 100_000
		}
		xs := spec.GenerateN(n, 1).Values
		res, err := Smooth(xs, WithResolution(1200))
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if res.Kurtosis < res.OriginalKurtosis-1e-9 {
			t.Errorf("%s: kurtosis constraint violated: %v < %v",
				spec.Name, res.Kurtosis, res.OriginalKurtosis)
		}
		if res.Roughness > res.OriginalRoughness+1e-9 {
			t.Errorf("%s: roughness increased: %v > %v",
				spec.Name, res.Roughness, res.OriginalRoughness)
		}
		if res.Window < 1 {
			t.Errorf("%s: window %d", spec.Name, res.Window)
		}
		for _, v := range res.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite smoothed value", spec.Name)
			}
		}
	}
}

func TestPipelineDeterminism(t *testing.T) {
	// Same dataset seed, same options -> bit-identical output through the
	// whole stack (generation, search, smoothing).
	spec, _ := datasets.ByName("Taxi")
	a, err := Smooth(spec.Generate(99).Values, WithResolution(800))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Smooth(spec.Generate(99).Values, WithResolution(800))
	if err != nil {
		t.Fatal(err)
	}
	if a.Window != b.Window || len(a.Values) != len(b.Values) {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Window, len(a.Values), b.Window, len(b.Values))
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("values differ at %d", i)
		}
	}
}

func TestBatchAndStreamingAgree(t *testing.T) {
	// A streaming operator that has seen exactly one full window of a
	// stationary series should choose a window close to the batch search
	// on the same data (identical is not guaranteed: streaming aggregates
	// online with WindowPoints/Resolution panes while batch uses
	// len/Resolution, but on a full window the two pipelines coincide).
	spec, _ := datasets.ByName("ramp traffic")
	xs := spec.Generate(3).Values

	batch, err := Smooth(xs, WithResolution(800))
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStreamer(StreamConfig{
		WindowPoints: len(xs),
		Resolution:   800,
		RefreshEvery: len(xs),
	})
	if err != nil {
		t.Fatal(err)
	}
	frame := st.PushBatch(xs)
	if frame == nil {
		t.Fatal("no frame after a full window")
	}
	if frame.Window != batch.Window {
		// Allow off-by-small differences from pane-boundary effects, but
		// both must be period-aligned (multiples of the daily period in
		// aggregated units, here 288/ratio).
		diff := frame.Window - batch.Window
		if diff < 0 {
			diff = -diff
		}
		if diff > batch.Window/4 {
			t.Errorf("streaming window %d far from batch %d", frame.Window, batch.Window)
		}
	}
}

func TestSmoothedPlotsArePerceptuallyBetter(t *testing.T) {
	// The headline end-to-end property: across every user-study dataset,
	// ASAP's rendering never scores lower anomaly prominence than the raw
	// rendering.
	for _, spec := range datasets.UserStudySpecs() {
		xs := spec.Generate(5).Values
		region := spec.AnomalyRegion(len(xs))
		asapPts, err := baselines.Apply(baselines.TechASAP, xs, 800)
		if err != nil {
			t.Fatal(err)
		}
		origPts, err := baselines.Apply(baselines.TechOriginal, xs, 800)
		if err != nil {
			t.Fatal(err)
		}
		asapProm, err := perception.Prominence(asapPts, region, 800)
		if err != nil {
			t.Fatal(err)
		}
		origProm, err := perception.Prominence(origPts, region, 800)
		if err != nil {
			t.Fatal(err)
		}
		if asapProm < origProm {
			t.Errorf("%s: ASAP prominence %v < original %v", spec.Name, asapProm, origProm)
		}
	}
}

func TestRenderPipelineStable(t *testing.T) {
	// Rendering any technique of any user-study dataset must produce a
	// raster with ink in every column (continuous line) and a finite
	// pixel error.
	spec, _ := datasets.ByName("Sine")
	xs := spec.Generate(7).Values
	for _, tech := range baselines.AllTechniques {
		e, err := render.TechniquePixelError(tech, xs, 400, 150)
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if e < 0 || e > 1 || math.IsNaN(e) {
			t.Errorf("%v: pixel error %v out of [0,1]", tech, e)
		}
	}
}

func TestAdversarialInputs(t *testing.T) {
	// Failure injection: inputs that historically break smoothing code.
	cases := map[string][]float64{
		"constant":        repeat(5, 100),
		"two-level":       append(repeat(0, 50), repeat(1, 50)...),
		"alternating":     alternating(100),
		"huge-magnitude":  scale(alternating(100), 1e15),
		"tiny-magnitude":  scale(alternating(100), 1e-15),
		"single-outlier":  withSpike(repeat(1, 200), 100, 1e9),
		"monotonic-ramp":  ramp(500),
		"negative-values": scale(ramp(100), -1),
	}
	for name, xs := range cases {
		res, err := Smooth(xs)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		for _, v := range res.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite output", name)
				break
			}
		}
		if res.Kurtosis < res.OriginalKurtosis-1e-9 {
			t.Errorf("%s: constraint violated", name)
		}
	}
}

func TestStreamingAdversarialInputs(t *testing.T) {
	st, err := NewStreamer(StreamConfig{WindowPoints: 100, Resolution: 50, RefreshEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Extreme alternation between huge and tiny values must not produce
	// NaNs in any frame.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		x := 1e12
		if rng.Intn(2) == 0 {
			x = -1e12
		}
		if f := st.Push(x); f != nil {
			for _, v := range f.Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatal("non-finite frame value")
				}
			}
		}
	}
}

func repeat(v float64, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = v
	}
	return xs
}

func alternating(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	return xs
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v * f
	}
	return out
}

func withSpike(xs []float64, at int, v float64) []float64 {
	out := append([]float64(nil), xs...)
	out[at] = v
	return out
}

func ramp(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	return xs
}

// Package asap is a Go implementation of ASAP (Automatic Smoothing for
// Attention Prioritization), the time-series smoothing operator of
//
//	Kexin Rong, Peter Bailis. "ASAP: Prioritizing Attention via Time
//	Series Smoothing." PVLDB 10(11), 2017.
//
// Given a time series, ASAP chooses the simple-moving-average window that
// makes the plotted series as smooth as possible (minimum roughness, the
// standard deviation of first differences) while still preserving its
// large-scale deviations (the smoothed series' kurtosis must not drop
// below the original's). The search exploits autocorrelation structure,
// target display resolution, and — in streaming mode — human-perceptible
// refresh rates to run orders of magnitude faster than exhaustive search.
//
// Batch usage:
//
//	res, err := asap.Smooth(values, asap.WithResolution(800))
//	// res.Values is the smoothed series, res.Window the chosen window.
//
// Streaming usage:
//
//	st, err := asap.NewStreamer(asap.StreamConfig{
//		WindowPoints: 28800, // visualize the last 8 hours at 1 Hz
//		Resolution:   800,
//		RefreshEvery: 60,    // re-render once per minute of data
//	})
//	for x := range source {
//		if frame := st.Push(x); frame != nil {
//			render(frame.Values)
//		}
//	}
//
// Server usage: cmd/asap-server exposes the streaming operator as a
// multi-series HTTP service. It fronts a sharded hub (one Streamer per
// series name, series spread across per-mutex shards) and ingests a
// line protocol of "series=value" or bare "value" lines over
// POST /ingest, with per-series reads on /frame, /plot.svg, /series,
// and /stats. Ingest bodies are all-or-nothing: a bad line rejects the
// whole batch before any point is applied.
//
// Reads can also be push: GET /stream delivers every refresh of one
// or more series over Server-Sent Events, fanning a single encoded
// frame out to all subscribers. Delivery is latest-wins — a burst of
// refreshes coalesces so each subscriber converges on the newest
// frame — with heartbeats, Last-Event-ID resume, and slow-consumer
// eviction bounded by -stall-timeout. See docs/STREAMING.md for the
// wire format and the coalescing/resume contracts.
//
// With -data-dir set the server is durable: acknowledged batches are
// appended to a per-shard write-ahead log before they are applied, and
// a restarted server warm-recovers every series via Streamer.Restore —
// the next frames continue the pre-crash values, window, and sequence
// numbers exactly. The data directory is exclusively locked, strict
// fsync mode group-commits concurrent appenders, and snapshots can run
// on a background schedule (-snapshot-interval / -snapshot-segments).
// See docs/DURABILITY.md for the record format, fsync and rotation
// semantics, and recovery guarantees.
//
// The log also ships: a second server started with -follow (its own
// -data-dir) mirrors the primary's segments over HTTP, long-polling
// the manifest so new appends propagate in about one round-trip
// instead of a poll interval, serves every read endpoint with frames
// bit-identical to the primary's, reports replication lag in /stats,
// and takes over ingest on POST /promote —
// kill-the-primary failover without losing restart equivalence. See
// the Replication section of docs/DURABILITY.md.
//
// Failure is first-class: a WAL shard whose disk starts failing
// degrades instead of wedging — reads and open SSE streams keep
// serving from memory, ingest into the shard answers 503 with
// Retry-After, and a background loop reopens the segment with capped
// backoff until durability returns (bounded by -wal-reopen-retries).
// Liveness and readiness are split (/healthz is always 200 while the
// process serves; /readyz gates traffic), follower polls retry a
// restarting primary with backoff and transient-vs-fatal
// classification instead of resyncing, and the whole failure matrix
// runs under -race against a scripted fault-injecting filesystem
// (internal/faultfs) via `make chaos-check`. See docs/RESILIENCE.md
// for the failure-mode table and the /healthz-vs-/readyz contract.
//
// The streaming refresh path is allocation-free at steady state: each
// per-series operator owns a planned real-input FFT, a reusable ACF
// analyzer, and search/smoothing buffers; emitted frames ride pooled
// reference-counted buffers (Frame.Release recycles them); PushBatch
// coalesces the refresh deadlines a batch crosses into one search at
// the batch tail; the search is skipped outright when no new aggregated
// pane has arrived since the last refresh; and StreamConfig.
// IncrementalACF (server flag -incremental-acf) maintains the
// autocorrelation in O(maxLag) per pane instead of recomputing it per
// refresh. See docs/PERFORMANCE.md for the engine's design, the
// allocation contract, and the measured baseline in BENCH_refresh.json
// — which CI enforces via the `make bench-gate` regression gate.
//
// The server is observable end to end: GET /metrics serves Prometheus
// text exposition from a zero-dependency registry (internal/obs) with
// latency histograms across every layer — HTTP routes, WAL
// append/fsync, smoothing refresh, SSE delivery, replication lag —
// logging is structured (log/slog, -log-format=json, request-ID
// correlation), -pprof-addr serves net/http/pprof on its own loopback
// listener, and -self-monitor feeds the server's own request-rate and
// fsync-latency gauges back through the hub as __asap.* series, so
// the dashboard streams an ASAP-smoothed view of the server itself —
// the paper's opening use case, applied reflexively. On top of the
// metrics, every request roots a distributed trace
// (internal/obs/trace): the ingest pipeline opens child spans per
// stage (parse, WAL append/fsync, refresh, broadcast), followers
// propagate W3C traceparent over the replication hop, OpenMetrics
// scrapes carry trace-id exemplars, and GET /traces explores the
// slow, errored, and baseline traces the tail sampler retained. See
// docs/OBSERVABILITY.md for the metric catalog, the Tracing section,
// and walkthroughs.
package asap

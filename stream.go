package asap

import (
	"github.com/asap-go/asap/internal/core"
	"github.com/asap-go/asap/internal/stream"
)

// StreamConfig configures a Streamer.
type StreamConfig struct {
	// WindowPoints is the number of raw points in the visualization
	// window (e.g. 1800 to always show the last 30 minutes of a 1 Hz
	// stream). Required, must be at least 4.
	WindowPoints int
	// Resolution is the target display width in pixels. Required.
	Resolution int
	// RefreshEvery is the on-demand update interval in raw points: the
	// smoothing parameters are re-searched once per interval instead of
	// per point (Section 4.5). Zero refreshes once per aggregated point.
	RefreshEvery int
	// Strategy overrides the search strategy (default ASAP). Exposed for
	// ablation; production use should keep the default.
	Strategy Strategy
	// DisablePreaggregation turns off pixel-aware preaggregation. Exposed
	// for ablation.
	DisablePreaggregation bool
	// MaxWindow optionally bounds the search on the aggregated window.
	MaxWindow int
	// IncrementalACF maintains the autocorrelation incrementally —
	// O(maxLag) per pane with periodic exact resyncs — instead of
	// recomputing it per refresh through the FFT (see
	// docs/PERFORMANCE.md). The ACF estimate agrees with the FFT path to
	// 1e-9, and frames are bit-identical whenever the search picks the
	// same window; because the maintained state spans the whole stream
	// history, enabling this weakens the bit-exact restart/replica frame
	// equivalence to that tolerance. Off by default.
	IncrementalACF bool
}

// Frame is one rendered output of a Streamer. Values is backed by a
// pooled, reference-counted buffer: callers that are done with a frame
// should Release it so the refresh path can recycle the buffer; callers
// that retain frames indefinitely may simply never Release — the buffer
// is never recycled under a live reference, they only forgo the reuse.
type Frame struct {
	// Values is the smoothed visualization window.
	Values []float64
	// Window is the chosen SMA window in aggregated points.
	Window int
	// Roughness and Kurtosis describe Values.
	Roughness float64
	Kurtosis  float64
	// SeedReused reports whether the previous window parameter was still
	// valid and reused (the CheckLastWindow fast path).
	SeedReused bool
	// Sequence numbers frames from 1.
	Sequence int

	inner stream.Frame // holds this frame's reference to the pooled buffer
}

// Release returns the frame's Values buffer to the shared frame pool
// once every holder has released it. After Release, Values must not be
// used. Release is a no-op on a nil or already-released frame (so
// `defer st.Push(x).Release()`-style patterns are safe); never call it
// twice on two copies of the same Frame.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	f.inner.Release()
	f.Values = nil
}

// Retain returns a new Frame sharing this frame's values buffer and
// carrying its own reference to it — the fan-out primitive: to hand one
// emission to N consumers, retain N frames and let each consumer
// Release its own when done. Call only while the receiver's reference
// is live (before its Release); retaining a nil or released frame
// returns it unchanged.
func (f *Frame) Retain() *Frame {
	if f == nil {
		return nil
	}
	g := *f
	g.inner = f.inner.Retain()
	return &g
}

// StreamStats counts a Streamer's work.
type StreamStats struct {
	RawPoints  int
	Panes      int
	Searches   int
	Candidates int
	// SearchesSkipped counts refreshes served from the cached search
	// result because no aggregated pane had completed since the previous
	// search (they still emit frames and count in Searches).
	SearchesSkipped int
	// SearchesCoalesced counts refresh deadlines PushBatch folded into a
	// single batch-tail search; they advance Sequence and count in
	// Searches but evaluate no candidates.
	SearchesCoalesced int
}

// Streamer is streaming ASAP: push points, receive refreshed smoothed
// frames at the configured cadence. Not safe for concurrent use; wrap
// with your own synchronization or run one Streamer per goroutine.
// For many concurrent streams, shard Streamers behind per-shard locks
// keyed by stream name the way cmd/asap-server's hub does — one
// Streamer per series keeps each operator single-threaded while
// distinct series ingest in parallel.
type Streamer struct {
	op *stream.Operator
}

// NewStreamer validates cfg and returns a ready Streamer.
func NewStreamer(cfg StreamConfig) (*Streamer, error) {
	op, err := stream.New(stream.Config{
		WindowPoints:          cfg.WindowPoints,
		Resolution:            cfg.Resolution,
		RefreshEvery:          cfg.RefreshEvery,
		Strategy:              coreStrategyForStream(cfg.Strategy),
		DisablePreaggregation: cfg.DisablePreaggregation,
		MaxWindow:             cfg.MaxWindow,
		IncrementalACF:        cfg.IncrementalACF,
	})
	if err != nil {
		return nil, err
	}
	return &Streamer{op: op}, nil
}

func coreStrategyForStream(s Strategy) core.Strategy { return coreStrategy(s) }

// Push feeds one point. It returns a new Frame when this point triggered
// a refresh, or nil otherwise.
func (s *Streamer) Push(x float64) *Frame {
	return convertFrame(s.op.Push(x))
}

// PushBatch feeds many points, returning the last frame produced (nil if
// none).
func (s *Streamer) PushBatch(xs []float64) *Frame {
	return convertFrame(s.op.PushBatch(xs))
}

// Prefill loads historical points without triggering refreshes — a warm
// start when attaching to a stream with existing history. When the
// history is a recovered suffix of an interrupted stream (e.g. replayed
// from a write-ahead log), use Restore instead so pane alignment and
// frame numbering continue where the interrupted stream left off.
func (s *Streamer) Prefill(xs []float64) { s.op.Prefill(xs) }

// Restore rebuilds the Streamer as if total points had been pushed, of
// which tail holds the most recent — the crash-recovery warm start.
// Like Prefill it emits no frames, but it additionally re-aligns
// preaggregation pane boundaries to the original stream offset and
// reconstructs the refresh phase and frame sequence, so the next frames
// exactly match (Values, Window, Sequence) those of a Streamer that was
// never interrupted. Frame() stays nil until the first post-restore
// refresh; Candidates counters restart at zero.
func (s *Streamer) Restore(tail []float64, total int) { s.op.Restore(tail, total) }

// Frame returns the most recent frame, or nil before the first refresh.
func (s *Streamer) Frame() *Frame { return convertFrame(s.op.Frame()) }

// Stats returns cumulative work counters.
func (s *Streamer) Stats() StreamStats {
	st := s.op.Stats()
	return StreamStats{
		RawPoints:         st.RawPoints,
		Panes:             st.Panes,
		Searches:          st.Searches,
		Candidates:        st.Candidates,
		SearchesSkipped:   st.Skipped,
		SearchesCoalesced: st.Coalesced,
	}
}

// Ratio returns the pixel-aware preaggregation ratio in effect.
func (s *Streamer) Ratio() int { return s.op.Ratio() }

// convertFrame lifts the operator's by-value frame into the public
// pointer-or-nil shape. The values slice is shared, not copied: the
// operator never writes an emitted frame's values while this frame
// holds its buffer reference (released by Frame.Release, or never —
// both are safe).
func convertFrame(f stream.Frame, ok bool) *Frame {
	if !ok {
		return nil
	}
	return &Frame{
		Values:     f.Smoothed,
		Window:     f.Window,
		Roughness:  f.Roughness,
		Kurtosis:   f.Kurtosis,
		SeedReused: f.SeedReused,
		Sequence:   f.Sequence,
		inner:      f,
	}
}

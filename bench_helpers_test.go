package asap

import (
	"math"

	"github.com/asap-go/asap/internal/acf"
)

// benchACF runs either ACF implementation for the ablation benchmark.
func benchACF(xs []float64, fft bool) (*acf.Result, error) {
	if fft {
		return acf.Compute(xs, len(xs)/10)
	}
	return acf.ComputeBruteForce(xs, len(xs)/10)
}

// sineAt is a tiny helper for benchmark data.
func sineAt(i, period int) float64 {
	return math.Sin(2 * math.Pi * float64(i) / float64(period))
}

// Command asap-bench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints paper-vs-measured tables; figure
// experiments additionally emit SVG renderings when -out is set.
//
// Usage:
//
//	asap-bench -list
//	asap-bench -run table2
//	asap-bench -run all -quick -out ./figures
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/asap-go/asap/internal/bench"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment id to run, or \"all\"")
		list  = flag.Bool("list", false, "list available experiments")
		quick = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		out   = flag.String("out", "", "directory for SVG figure outputs")
		seed  = flag.Int64("seed", bench.DefaultConfig.Seed, "random seed for synthetic data and observers")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("Available experiments (run with -run <id> or -run all):")
		for _, e := range bench.All() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed, OutDir: *out}
	var targets []bench.Experiment
	if *run == "all" {
		targets = bench.All()
	} else {
		e, ok := bench.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "asap-bench: unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		targets = []bench.Experiment{e}
	}

	failed := false
	for _, e := range targets {
		fmt.Printf("==> %s: %s\n", e.ID, e.Title)
		fmt.Printf("    paper: %s\n\n", e.PaperClaim)
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "asap-bench: %s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("    (%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}

// Command asap smooths a time series from a CSV file (or a built-in
// synthetic dataset) and writes the smoothed series, an ASCII preview, or
// an SVG plot.
//
// Usage:
//
//	asap -in metrics.csv -resolution 800 -svg out.svg
//	asap -dataset Taxi -ascii
//	generate-metrics | asap -in - -out smoothed.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/csvio"
	"github.com/asap-go/asap/internal/datasets"
	"github.com/asap-go/asap/internal/plot"
	"github.com/asap-go/asap/internal/stats"
	"github.com/asap-go/asap/internal/timeseries"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "asap: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("asap", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input CSV file (\"-\" for stdin); layouts: value | timestamp,value")
		dataset    = fs.String("dataset", "", "generate a built-in synthetic dataset instead (see -datasets)")
		listData   = fs.Bool("datasets", false, "list built-in datasets")
		resolution = fs.Int("resolution", 800, "target display width in pixels (0 = no preaggregation)")
		strategy   = fs.String("strategy", "asap", "search strategy: asap|exhaustive|grid2|grid10|binary")
		out        = fs.String("out", "", "write smoothed values as CSV to this file (\"-\" for stdout)")
		svg        = fs.String("svg", "", "write an SVG plot (original + smoothed) to this file")
		ascii      = fs.Bool("ascii", false, "print an ASCII chart of the smoothed series")
		zscore     = fs.Bool("zscore", false, "z-score normalize the output")
		seed       = fs.Int64("seed", 42, "seed for -dataset generation")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listData {
		for _, s := range datasets.Catalog() {
			fmt.Fprintf(stdout, "%-14s %9d points  %-10s %s\n", s.Name, s.N, s.DurationLabel, s.Description)
		}
		return nil
	}

	series, err := loadSeries(*in, *dataset, *seed, stdin)
	if err != nil {
		return err
	}

	strat, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	res, err := asap.Smooth(series.Values,
		asap.WithResolution(*resolution),
		asap.WithStrategy(strat),
	)
	if err != nil {
		return err
	}

	values := res.Values
	if *zscore {
		values = asap.ZScores(values)
	}

	fmt.Fprintf(stdout, "series: %s (%d points)\n", series.Name, series.Len())
	fmt.Fprintf(stdout, "chosen window: %d (preaggregation ratio %d, %d candidates tried)\n",
		res.Window, res.Ratio, res.CandidatesTried)
	fmt.Fprintf(stdout, "roughness: %.4g -> %.4g   kurtosis: %.4g -> %.4g\n",
		res.OriginalRoughness, res.Roughness, res.OriginalKurtosis, res.Kurtosis)

	if *ascii {
		chart, err := plot.ASCII(values, 78, 16)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, chart)
	}
	if *out != "" {
		w := stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := csvio.WriteValues(w, values); err != nil {
			return err
		}
	}
	if *svg != "" {
		doc, err := plot.SVGSeries("ASAP: "+series.Name, 900, 360, map[string][]float64{
			"original": stats.ZScores(series.Values),
			"ASAP":     stats.ZScores(res.Values),
		}, []string{"original", "ASAP"})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*svg, []byte(doc), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *svg)
	}
	return nil
}

func loadSeries(in, dataset string, seed int64, stdin io.Reader) (*timeseries.Series, error) {
	switch {
	case dataset != "":
		spec, ok := datasets.ByName(dataset)
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q (use -datasets to list)", dataset)
		}
		return spec.Generate(seed), nil
	case in == "-":
		return csvio.Read(stdin, "stdin")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return csvio.Read(f, in)
	default:
		return nil, fmt.Errorf("provide -in <file> or -dataset <name>")
	}
}

func parseStrategy(s string) (asap.Strategy, error) {
	switch strings.ToLower(s) {
	case "asap":
		return asap.ASAP, nil
	case "exhaustive":
		return asap.Exhaustive, nil
	case "grid2":
		return asap.Grid2, nil
	case "grid10":
		return asap.Grid10, nil
	case "binary":
		return asap.Binary, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDataset(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-dataset", "Sine", "-resolution", "800", "-ascii"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"series: Sine (800 points)", "chosen window:", "roughness:", "[min"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunListDatasets(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-datasets"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Taxi", "gas sensor", "Twitter AAPL"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("dataset listing missing %q", want)
		}
	}
}

func TestRunStdinCSV(t *testing.T) {
	var in strings.Builder
	in.WriteString("value\n")
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			in.WriteString("1\n")
		} else {
			in.WriteString("2\n")
		}
	}
	var out bytes.Buffer
	err := run([]string{"-in", "-", "-resolution", "0", "-out", "-"}, strings.NewReader(in.String()), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "series: stdin (400 points)") {
		t.Errorf("stdin not processed: %s", out.String())
	}
	if !strings.Contains(out.String(), "value\n") {
		t.Error("CSV output missing")
	}
}

func TestRunSVGOutput(t *testing.T) {
	dir := t.TempDir()
	svgPath := filepath.Join(dir, "out.svg")
	var out bytes.Buffer
	err := run([]string{"-dataset", "Taxi", "-svg", svgPath}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("SVG file malformed")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, nil, &out); err == nil {
		t.Error("no input should error")
	}
	if err := run([]string{"-dataset", "nope"}, nil, &out); err == nil {
		t.Error("unknown dataset should error")
	}
	if err := run([]string{"-dataset", "Sine", "-strategy", "magic"}, nil, &out); err == nil {
		t.Error("unknown strategy should error")
	}
	if err := run([]string{"-in", "-"}, strings.NewReader("garbage,more,cols\n1,2,3\n"), &out); err == nil {
		t.Error("bad CSV should error")
	}
}

func TestParseStrategy(t *testing.T) {
	for _, name := range []string{"asap", "exhaustive", "grid2", "grid10", "binary", "ASAP"} {
		if _, err := parseStrategy(name); err != nil {
			t.Errorf("parseStrategy(%q): %v", name, err)
		}
	}
	if _, err := parseStrategy("x"); err == nil {
		t.Error("bad strategy accepted")
	}
}

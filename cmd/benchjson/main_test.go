package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/asap-go/asap/internal/acf
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkACFPlan/analyzer-8         	    5738	    204722 ns/op	       0 B/op	       0 allocs/op
pkg: github.com/asap-go/asap/internal/stream
BenchmarkRefresh/search-8   	   14370	     82317 ns/op	    6144 B/op	       1 allocs/op
PASS
`

func parseSample(t *testing.T, text string) *document {
	t.Helper()
	doc, err := parseStream(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseStream(t *testing.T) {
	doc := parseSample(t, sampleOutput)
	if doc.CPU == "" || doc.GOOS != "linux" || doc.GOARCH != "amd64" {
		t.Errorf("context lines lost: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Pkg != "github.com/asap-go/asap/internal/acf" || b.Name != "BenchmarkACFPlan/analyzer" {
		t.Errorf("first benchmark = %+v", b)
	}
	if b.NsPerOp != 204722 || b.AllocsPerOp != 0 {
		t.Errorf("first benchmark metrics = %+v", b)
	}
	if doc.Benchmarks[1].AllocsPerOp != 1 || doc.Benchmarks[1].BPerOp != 6144 {
		t.Errorf("second benchmark metrics = %+v", doc.Benchmarks[1])
	}
}

func mkDoc(cpu string, benches ...result) *document {
	return &document{GOOS: "linux", GOARCH: "amd64", CPU: cpu, Benchmarks: benches}
}

func bench(pkg, name string, ns float64, allocs int64) result {
	return result{Pkg: pkg, Name: name, Iterations: 100, NsPerOp: ns, AllocsPerOp: allocs}
}

func benchB(pkg, name string, ns float64, allocs, bytes int64) result {
	r := bench(pkg, name, ns, allocs)
	r.BPerOp = bytes
	return r
}

func TestCompareBytesRegressionGatesCrossHardware(t *testing.T) {
	// Same alloc count, ballooned allocation size: must gate even when
	// the hardware differs (B/op is machine-independent).
	base := mkDoc("xeon", benchB("p", "B1", 100, 8, 40_000))
	fresh := mkDoc("epyc", benchB("p", "B1", 100, 8, 2_000_000))
	rep := compare(base, fresh, gateConfig{Tolerance: 0.25, ByteSlack: 1024})
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "B/op") {
		t.Fatalf("B/op regression not gated: %v", rep.Regressions)
	}
	// Noise within tolerance+slack passes (pooled paths report a few
	// amortized bytes/op that wobble between runs).
	fresh = mkDoc("epyc", benchB("p", "B1", 100, 8, 41_000))
	rep = compare(base, fresh, gateConfig{Tolerance: 0.25, ByteSlack: 1024})
	if len(rep.Regressions) != 0 {
		t.Errorf("B/op noise gated: %v", rep.Regressions)
	}
	// Zero-byte baselines tolerate only the slack.
	base = mkDoc("xeon", benchB("p", "B1", 100, 0, 0))
	fresh = mkDoc("epyc", benchB("p", "B1", 100, 0, 4096))
	rep = compare(base, fresh, gateConfig{Tolerance: 0.25, ByteSlack: 1024})
	if len(rep.Regressions) != 1 {
		t.Errorf("zero-baseline B/op growth not gated: %v", rep.Regressions)
	}
}

func TestCompareWithinToleranceSameHardware(t *testing.T) {
	base := mkDoc("xeon", bench("p", "B1", 100, 1), bench("p", "B2", 1000, 0))
	fresh := mkDoc("xeon", bench("p", "B1", 120, 1), bench("p", "B2", 900, 0))
	rep := compare(base, fresh, gateConfig{Tolerance: 0.25})
	if len(rep.Regressions) != 0 {
		t.Errorf("unexpected regressions: %v", rep.Regressions)
	}
	if rep.Compared != 2 {
		t.Errorf("compared %d, want 2", rep.Compared)
	}
}

func TestCompareTimeRegressionGatesOnSameHardware(t *testing.T) {
	base := mkDoc("xeon", bench("p", "B1", 100, 0))
	fresh := mkDoc("xeon", bench("p", "B1", 126, 0))
	rep := compare(base, fresh, gateConfig{Tolerance: 0.25})
	if len(rep.Regressions) != 1 {
		t.Fatalf("regressions = %v, want 1 ns/op failure", rep.Regressions)
	}
}

func TestCompareTimeRegressionDemotedOnDifferentHardware(t *testing.T) {
	base := mkDoc("xeon", bench("p", "B1", 100, 0))
	fresh := mkDoc("epyc", bench("p", "B1", 300, 0))
	rep := compare(base, fresh, gateConfig{Tolerance: 0.25})
	if len(rep.Regressions) != 0 {
		t.Errorf("cross-hardware time drift gated: %v", rep.Regressions)
	}
	if len(rep.Notes) == 0 {
		t.Error("cross-hardware drift produced no note")
	}
	// -time-gate always restores the gate.
	rep = compare(base, fresh, gateConfig{Tolerance: 0.25, TimeGate: "always"})
	if len(rep.Regressions) != 1 {
		t.Errorf("time-gate always did not gate: %v", rep.Regressions)
	}
}

func TestCompareTimeGateNever(t *testing.T) {
	// Identical CPU strings do not prove identical hardware (generic
	// virtualized strings are shared across clouds): "never" demotes
	// time failures even on a string match, for shared CI runners.
	base := mkDoc("Intel(R) Xeon(R) Processor @ 2.10GHz", bench("p", "B1", 100, 0))
	fresh := mkDoc("Intel(R) Xeon(R) Processor @ 2.10GHz", bench("p", "B1", 300, 0))
	rep := compare(base, fresh, gateConfig{Tolerance: 0.25, TimeGate: "never"})
	if len(rep.Regressions) != 0 {
		t.Errorf("time-gate never still gated: %v", rep.Regressions)
	}
	// Allocs still gate under never.
	fresh = mkDoc("Intel(R) Xeon(R) Processor @ 2.10GHz", bench("p", "B1", 100, 3))
	rep = compare(base, fresh, gateConfig{Tolerance: 0.25, TimeGate: "never"})
	if len(rep.Regressions) != 1 {
		t.Errorf("allocs not gated under time-gate never: %v", rep.Regressions)
	}
}

func TestCompareAllocRegressionAlwaysGates(t *testing.T) {
	base := mkDoc("xeon", bench("p", "B1", 100, 0))
	fresh := mkDoc("epyc", bench("p", "B1", 100, 2)) // different hardware: allocs still gate
	rep := compare(base, fresh, gateConfig{Tolerance: 0.25})
	if len(rep.Regressions) != 1 {
		t.Fatalf("alloc regression not gated cross-hardware: %v", rep.Regressions)
	}
	// Drift allowance.
	rep = compare(base, fresh, gateConfig{Tolerance: 0.25, AllocDrift: 2})
	if len(rep.Regressions) != 0 {
		t.Errorf("alloc drift allowance ignored: %v", rep.Regressions)
	}
}

func TestCompareMissingBenchmarkGates(t *testing.T) {
	base := mkDoc("xeon", bench("p", "B1", 100, 0), bench("p", "B2", 100, 0))
	fresh := mkDoc("xeon", bench("p", "B1", 100, 0))
	rep := compare(base, fresh, gateConfig{Tolerance: 0.25})
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "missing") {
		t.Fatalf("missing benchmark not gated: %v", rep.Regressions)
	}
}

func TestCompareNewBenchmarkIsNoteOnly(t *testing.T) {
	base := mkDoc("xeon", bench("p", "B1", 100, 0))
	fresh := mkDoc("xeon", bench("p", "B1", 100, 0), bench("p", "BNew", 50, 0))
	rep := compare(base, fresh, gateConfig{Tolerance: 0.25})
	if len(rep.Regressions) != 0 {
		t.Errorf("new benchmark gated: %v", rep.Regressions)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "BNew") {
			found = true
		}
	}
	if !found {
		t.Error("new benchmark not noted")
	}
}

// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a stable JSON document on stdout, so benchmark baselines can
// be committed and diffed across PRs (BENCH_refresh.json). It understands
// the standard benchmark result line
//
//	BenchmarkName/sub-8   1234   5678 ns/op   90 B/op   12 allocs/op
//
// plus the goos/goarch/cpu/pkg context lines, and ignores everything else.
//
// With -baseline it additionally gates the run against a committed
// baseline document (the `make bench-gate` CI regression gate): every
// baseline benchmark must still exist, allocs/op may not grow by more
// than -alloc-drift (default 0 — allocation regressions are machine
// independent and always enforced), B/op may not grow past the
// tolerance plus -byte-slack, and ns/op may not grow by more than
// -tolerance (default 25%). Because wall-clock numbers only compare
// meaningfully on the machine that produced the baseline, -time-gate
// controls when ns/op failures gate: "auto" (default) gates only when
// the runner's cpu/goos/goarch match the baseline's, "never" demotes
// them to warnings (what shared CI runners want — virtualized machines
// often report identical generic CPU strings while being completely
// different hardware), "always" gates regardless. The alloc, byte, and
// existence checks always gate. -o writes the fresh document to a file
// (for CI artifact upload) instead of stdout.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type document struct {
	GeneratedBy string   `json:"generated_by"`
	GOOS        string   `json:"goos,omitempty"`
	GOARCH      string   `json:"goarch,omitempty"`
	CPU         string   `json:"cpu,omitempty"`
	Benchmarks  []result `json:"benchmarks"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline JSON to gate against (empty = just convert)")
		tolerance    = flag.Float64("tolerance", 0.25, "allowed fractional ns/op (and B/op) growth over the baseline")
		allocDrift   = flag.Int64("alloc-drift", 0, "allowed allocs/op growth over the baseline")
		byteSlack    = flag.Int64("byte-slack", 1024, "absolute B/op growth allowed on top of -tolerance (amortization noise)")
		timeGate     = flag.String("time-gate", "auto", "when ns/op regressions fail the gate: auto (only when cpu/goos/goarch match the baseline), always, never")
		outPath      = flag.String("o", "", "write the fresh JSON document here instead of stdout")
	)
	flag.Parse()
	switch *timeGate {
	case "auto", "always", "never":
	default:
		fmt.Fprintf(os.Stderr, "benchjson: -time-gate %q (want auto, always, or never)\n", *timeGate)
		os.Exit(2)
	}

	doc, err := parseStream(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *baselinePath == "" {
		return
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var base document
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad baseline %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}
	rep := compare(&base, doc, gateConfig{
		Tolerance:  *tolerance,
		AllocDrift: *allocDrift,
		ByteSlack:  *byteSlack,
		TimeGate:   *timeGate,
	})
	for _, n := range rep.Notes {
		fmt.Fprintln(os.Stderr, "benchjson: note:", n)
	}
	for _, p := range rep.Regressions {
		fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", p)
	}
	if len(rep.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) against %s\n", len(rep.Regressions), *baselinePath)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate passed: %d benchmark(s) within tolerance of %s\n",
		rep.Compared, *baselinePath)
}

// parseStream converts benchmark text output into a document.
func parseStream(r io.Reader) (*document, error) {
	doc := &document{GeneratedBy: "make bench", Benchmarks: []result{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	return doc, sc.Err()
}

// gateConfig parameterizes the regression gate.
type gateConfig struct {
	Tolerance  float64 // allowed fractional ns/op and B/op growth
	AllocDrift int64   // allowed allocs/op growth
	ByteSlack  int64   // absolute B/op growth allowed on top of Tolerance
	// TimeGate: "auto" gates ns/op only when cpu/goos/goarch match the
	// baseline's, "always" gates regardless, "never" demotes every
	// ns/op failure to a note. "never" is what shared CI runners want:
	// virtualized machines often report identical generic CPU strings
	// (e.g. "Intel(R) Xeon(R) Processor @ 2.10GHz") while being
	// completely different, noisy hardware, so a string match is not
	// evidence the clock is comparable.
	TimeGate string
}

// gateReport is the outcome of comparing a fresh run to a baseline.
type gateReport struct {
	Compared    int      // benchmarks present in both documents
	Regressions []string // failures that gate the build
	Notes       []string // non-gating observations (new benches, cross-machine time drift)
}

// compare diffs fresh against base under cfg. Alloc growth, byte
// growth, and missing benchmarks always gate; ns/op growth gates per
// cfg.TimeGate (see gateConfig), because a committed baseline travels
// to CI runners with different clocks.
func compare(base, fresh *document, cfg gateConfig) gateReport {
	var rep gateReport
	sameHW := base.CPU != "" && base.CPU == fresh.CPU &&
		base.GOOS == fresh.GOOS && base.GOARCH == fresh.GOARCH
	var gateTime bool
	switch cfg.TimeGate {
	case "always":
		gateTime = true
	case "never":
		gateTime = false
	default: // auto
		gateTime = sameHW
	}
	if !gateTime {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"ns/op drift reported but not gated (time-gate %s; baseline hardware %q/%s/%s, this run %q/%s/%s)",
			cfg.TimeGate, base.CPU, base.GOOS, base.GOARCH, fresh.CPU, fresh.GOOS, fresh.GOARCH))
	}

	freshBy := make(map[string]result, len(fresh.Benchmarks))
	for _, r := range fresh.Benchmarks {
		freshBy[r.Pkg+" "+r.Name] = r
	}
	baseSeen := make(map[string]bool, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		key := b.Pkg + " " + b.Name
		baseSeen[key] = true
		f, ok := freshBy[key]
		if !ok {
			rep.Regressions = append(rep.Regressions, fmt.Sprintf(
				"%s: present in baseline but missing from this run (deleted or renamed benchmark rots the gate)", key))
			continue
		}
		rep.Compared++
		if f.AllocsPerOp > b.AllocsPerOp+cfg.AllocDrift {
			rep.Regressions = append(rep.Regressions, fmt.Sprintf(
				"%s: allocs/op %d > baseline %d (+%d allowed)", key, f.AllocsPerOp, b.AllocsPerOp, cfg.AllocDrift))
		}
		// B/op is as machine-independent as allocs/op, so it gates
		// everywhere too; the tolerance+slack absorbs the amortization
		// noise of pooled paths (a few bytes/op) while still catching a
		// same-count allocation that ballooned in size.
		if maxBytes := int64(float64(b.BPerOp)*(1+cfg.Tolerance)) + cfg.ByteSlack; f.BPerOp > maxBytes {
			rep.Regressions = append(rep.Regressions, fmt.Sprintf(
				"%s: B/op %d > baseline %d (%d allowed)", key, f.BPerOp, b.BPerOp, maxBytes))
		}
		if b.NsPerOp > 0 && f.NsPerOp > b.NsPerOp*(1+cfg.Tolerance) {
			msg := fmt.Sprintf("%s: ns/op %.4g > baseline %.4g (+%.0f%% allowed)",
				key, f.NsPerOp, b.NsPerOp, cfg.Tolerance*100)
			if gateTime {
				rep.Regressions = append(rep.Regressions, msg)
			} else {
				rep.Notes = append(rep.Notes, msg)
			}
		}
	}
	for _, f := range fresh.Benchmarks {
		if key := f.Pkg + " " + f.Name; !baseSeen[key] {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s: new benchmark with no baseline entry (run `make bench` and commit BENCH_refresh.json)", key))
		}
	}
	return rep
}

// parseBench parses one benchmark result line. Fields appear as value
// followed by unit ("ns/op", "B/op", "allocs/op"); unknown units are
// skipped so custom b.ReportMetric output does not break parsing.
func parseBench(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix goparallel benchmarks append.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		}
	}
	return r, r.NsPerOp > 0
}

// Command benchjson converts `go test -bench -benchmem` text output on
// stdin into a stable JSON document on stdout, so benchmark baselines can
// be committed and diffed across PRs (BENCH_refresh.json). It understands
// the standard benchmark result line
//
//	BenchmarkName/sub-8   1234   5678 ns/op   90 B/op   12 allocs/op
//
// plus the goos/goarch/cpu/pkg context lines, and ignores everything else.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type document struct {
	GeneratedBy string   `json:"generated_by"`
	GOOS        string   `json:"goos,omitempty"`
	GOARCH      string   `json:"goarch,omitempty"`
	CPU         string   `json:"cpu,omitempty"`
	Benchmarks  []result `json:"benchmarks"`
}

func main() {
	doc := document{GeneratedBy: "make bench", Benchmarks: []result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				r.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench parses one benchmark result line. Fields appear as value
// followed by unit ("ns/op", "B/op", "allocs/op"); unknown units are
// skipped so custom b.ReportMetric output does not break parsing.
func parseBench(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix goparallel benchmarks append.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if v, err := strconv.ParseFloat(val, 64); err == nil {
				r.NsPerOp = v
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.BPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		}
	}
	return r, r.NsPerOp > 0
}

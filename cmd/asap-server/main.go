// Command asap-server runs ASAP in the server-side execution mode of
// Section 2: it ingests metric streams over HTTP and serves smoothed
// frames to visualization clients, plus a small self-contained
// dashboard. It fronts a sharded multi-series hub (internal/server):
// each series name maps to its own streaming operator, and series are
// spread across per-mutex shards so concurrent ingest into distinct
// series does not contend.
//
// Endpoints:
//
//	POST /ingest                line protocol (below) — appends points
//	GET  /frame?series=NAME     latest smoothed frame as JSON
//	GET  /stream?series=A,B     live frames over Server-Sent Events:
//	                            coalesced to the newest under load,
//	                            heartbeats, Last-Event-ID resume (see
//	                            docs/STREAMING.md)
//	GET  /series                live series listing as JSON
//	GET  /stats[?series=NAME]   aggregate + per-series + WAL +
//	                            replication counters
//	GET  /plot.svg?series=NAME  SVG of the current frame
//	GET  /healthz               liveness: always 200 while the process
//	                            serves; body carries WAL + replication
//	                            diagnostics
//	GET  /readyz                readiness: 503 + Retry-After while WAL
//	                            shards are degraded/wedged, flush lag is
//	                            excessive, or replication is stale (see
//	                            docs/RESILIENCE.md)
//	POST /snapshot              compact the WAL into a fresh checkpoint
//	GET  /replica/segments      replication manifest (WAL shipping)
//	GET  /replica/segment       ranged segment/snapshot bytes
//	POST /promote               turn a follower into the primary
//	GET  /traces                retained traces (slow/errored/sampled),
//	                            filterable: ?route= &min_ms= &errors=1
//	GET  /traces/{id}           one trace as a JSON span tree (or a
//	                            text waterfall with ?format=text)
//	GET  /                      embedded dashboard (live via /stream)
//
// The ingest line protocol is one point per line: either "series=value"
// or a bare "value", which is routed to the default series (-series).
// Blank lines and #-comments are skipped. Bodies are all-or-nothing: a
// bad line rejects the whole batch with 400 and nothing is applied.
// Reads default to the default series when ?series= is omitted.
//
// With -data-dir set, ingest is durable: every acknowledged batch is
// appended to a per-shard write-ahead log (see docs/DURABILITY.md)
// before it is applied, and a restarted server warm-recovers all
// series — the next frames continue the pre-crash values and sequence
// numbers exactly. -fsync-every batches fsyncs (0 fsyncs per append);
// -segment-bytes tunes segment rotation. The directory is exclusively
// locked (flock) so two servers can never share one log. Background
// compaction runs on -snapshot-interval and/or once any shard holds
// -snapshot-segments sealed segments.
//
// A write or fsync failure degrades the affected WAL shard instead of
// wedging it: reads keep serving from memory, ingest to that shard
// answers 503 + Retry-After, and a background loop retries reopening
// the segment with capped exponential backoff until durability is
// restored — or until -wal-reopen-retries attempts are exhausted
// (0 retries forever; negative wedges on the first failure). See
// docs/RESILIENCE.md.
//
// With -follow URL the server is a read-only replica of that primary:
// it mirrors the primary's WAL into -data-dir (polling every
// -poll-every), serves /frame, /plot.svg, /series, and /stats locally
// with replication lag reported, and rejects writes with 503 naming
// the primary. POST /promote seals the mirrored tail, reopens it as a
// writable WAL, and starts accepting ingest — failover. Frames served
// by a follower are bit-identical (Values, Window, Sequence) to the
// primary's for every replicated point; see docs/DURABILITY.md.
//
// Every request roots a trace (honoring an inbound W3C traceparent
// and echoing one on the response): ingest opens child spans for the
// parse, the WAL append and fsync, the refresh, and the broadcast
// publish, and a follower's poll joins its trace to the primary's over
// the replication hop. Slow, errored, and reservoir-sampled traces are
// retained for the GET /traces explorer; -trace-slow sets the slow
// threshold (such requests also log a span breakdown), -trace-sample
// the head-sampling rate. See the Tracing section of
// docs/OBSERVABILITY.md.
//
// For demos, -simulate taxi feeds the built-in Taxi generator at a
// fixed rate so the dashboard animates without an external producer.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/obs"
	"github.com/asap-go/asap/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8347", "listen address")
		window    = flag.Int("window", 14400, "visualization window in raw points")
		res       = flag.Int("resolution", 800, "target display width in pixels")
		refresh   = flag.Int("refresh", 0, "refresh interval in raw points (0 = per aggregated point)")
		incACF    = flag.Bool("incremental-acf", false, "maintain the ACF incrementally per pane instead of recomputing per refresh (1e-9-tolerance frames, see docs/PERFORMANCE.md)")
		shards    = flag.Int("shards", 0, "series lock shards (0 = GOMAXPROCS)")
		maxSeries = flag.Int("max-series", server.DefaultMaxSeries, "live series cap (LRU eviction beyond it)")
		series    = flag.String("series", server.DefaultSeriesName, "default series for bare-value ingest and reads")
		simulate  = flag.String("simulate", "", "feed a built-in dataset (e.g. Taxi) at -rate points/sec")
		rate      = flag.Int("rate", 200, "simulation rate, points per second")

		dataDir      = flag.String("data-dir", "", "write-ahead log directory for durable ingest (empty = memory only)")
		fsyncEvery   = flag.Duration("fsync-every", 100*time.Millisecond, "batch WAL fsyncs on this interval (0 = fsync every append, group-committed)")
		segmentBytes = flag.Int64("segment-bytes", 8<<20, "rotate WAL segments at this size")
		reopenTries  = flag.Int("wal-reopen-retries", 0, "reopen attempts before a degraded WAL shard wedges (0 = retry forever, negative = wedge immediately)")
		maxBody      = flag.Int64("max-ingest-bytes", server.DefaultMaxIngestBytes, "largest accepted POST /ingest body (413 beyond)")

		follow       = flag.String("follow", "", "replicate this primary's WAL and serve read-only (requires -data-dir)")
		pollEvery    = flag.Duration("poll-every", 500*time.Millisecond, "follower manifest poll interval (long-polls hold open this long)")
		snapInterval = flag.Duration("snapshot-interval", 0, "compact the WAL on this interval (0 = only on demand)")
		snapSegments = flag.Int("snapshot-segments", 0, "compact once any shard holds this many sealed segments (0 = off)")

		maxSubs        = flag.Int("max-subscribers", server.DefaultMaxSubscribers, "concurrent GET /stream subscribers (503 beyond)")
		heartbeatEvery = flag.Duration("heartbeat-every", server.DefaultHeartbeatEvery, "SSE heartbeat-comment interval on idle streams")
		stallTimeout   = flag.Duration("stall-timeout", server.DefaultStallTimeout, "evict a /stream subscriber whose frames sat undrained this long")
		drainTimeout   = flag.Duration("drain-timeout", server.DefaultDrainTimeout, "graceful connection drain bound at shutdown")

		logFormat   = flag.String("log-format", "text", "structured log format: text or json")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, or error (debug adds per-request access lines)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this extra listener (e.g. 127.0.0.1:6060; empty = off)")
		selfMonitor = flag.Bool("self-monitor", false, "ingest the server's own health gauges as __asap.* series and smooth them live")
		selfEvery   = flag.Duration("self-monitor-every", time.Second, "self-monitor sampling interval")

		traceSlow   = flag.Duration("trace-slow", 0, "slow-request threshold: traces at or over it are retained and logged with a span breakdown (0 = 250ms)")
		traceSample = flag.Int("trace-sample", 0, "record 1 in N requests without an inbound traceparent (0 = all; negative = only joined traces)")
	)
	flag.Parse()

	logger, err := obs.NewLogger(*logFormat, *logLevel, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asap-server: %v\n", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	srv, err := server.New(server.Config{
		Hub: server.HubConfig{
			Stream: asap.StreamConfig{
				WindowPoints:   *window,
				Resolution:     *res,
				RefreshEvery:   *refresh,
				IncrementalACF: *incACF,
			},
			Shards:        *shards,
			MaxSeries:     *maxSeries,
			DefaultSeries: *series,
		},
		Simulate:         *simulate,
		Rate:             *rate,
		DataDir:          *dataDir,
		FsyncEvery:       *fsyncEvery,
		SegmentBytes:     *segmentBytes,
		WALReopenRetries: *reopenTries,
		MaxIngestBytes:   *maxBody,
		Follow:           *follow,
		FollowPoll:       *pollEvery,
		SnapshotInterval: *snapInterval,
		SnapshotSegments: *snapSegments,
		MaxSubscribers:   *maxSubs,
		HeartbeatEvery:   *heartbeatEvery,
		StallTimeout:     *stallTimeout,
		DrainTimeout:     *drainTimeout,
		Logger:           logger,
		PprofAddr:        *pprofAddr,
		SelfMonitor:      *selfMonitor,
		SelfMonitorEvery: *selfEvery,
		TraceSlow:        *traceSlow,
		TraceSample:      *traceSample,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "asap-server: %v\n", err)
		os.Exit(1)
	}
	if st, ok := srv.WALStats(); ok {
		logger.Info("wal recovered",
			"dir", *dataDir,
			"series", st.Recovery.SeriesRecovered,
			"points_replayed", st.Recovery.PointsReplayed,
			"snapshots", st.Recovery.SnapshotsLoaded,
			"corrupt_skipped", st.Recovery.CorruptRecordsSkipped,
			"duration", st.Recovery.Duration)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *simulate != "" {
		logger.Info("simulating", "dataset", *simulate, "rate_pts_per_sec", *rate)
	}
	if *follow != "" {
		logger.Info("following primary as read-only replica; POST /promote to take over",
			"primary", *follow, "poll_every", *pollEvery)
	}
	logger.Info("asap-server listening", "addr", *addr, "window_pts", *window, "resolution_px", *res)
	if err := srv.Run(ctx, *addr); err != nil {
		logger.Error("server exited", "error", err)
		os.Exit(1)
	}
}

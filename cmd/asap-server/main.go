// Command asap-server runs ASAP in the server-side execution mode of
// Section 2: it ingests a metric stream over HTTP and serves smoothed
// frames to visualization clients, plus a small self-contained dashboard.
//
// Endpoints:
//
//	POST /ingest        body: one float per line — appends to the stream
//	GET  /frame         latest smoothed frame as JSON
//	GET  /stats         operator counters as JSON
//	GET  /              embedded dashboard (auto-refreshing SVG)
//	GET  /plot.svg      SVG of the current frame
//
// For demos, -simulate taxi feeds the built-in Taxi generator at a fixed
// rate so the dashboard animates without an external producer.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/datasets"
	"github.com/asap-go/asap/internal/plot"
	"github.com/asap-go/asap/internal/stats"
)

type server struct {
	mu sync.Mutex
	st *asap.Streamer
}

func (s *server) ingest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	defer r.Body.Close()
	sc := bufio.NewScanner(r.Body)
	count := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad value %q", line), http.StatusBadRequest)
			return
		}
		s.st.Push(v)
		count++
	}
	if err := sc.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "ingested %d points\n", count)
}

type frameJSON struct {
	Values     []float64 `json:"values"`
	Window     int       `json:"window"`
	Roughness  float64   `json:"roughness"`
	Kurtosis   float64   `json:"kurtosis"`
	SeedReused bool      `json:"seed_reused"`
	Sequence   int       `json:"sequence"`
}

func (s *server) frame(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	f := s.st.Frame()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if f == nil {
		fmt.Fprintln(w, "null")
		return
	}
	if err := json.NewEncoder(w).Encode(frameJSON{
		Values: f.Values, Window: f.Window, Roughness: f.Roughness,
		Kurtosis: f.Kurtosis, SeedReused: f.SeedReused, Sequence: f.Sequence,
	}); err != nil {
		log.Printf("frame encode: %v", err)
	}
}

func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := s.st.Stats()
	ratio := s.st.Ratio()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]interface{}{
		"raw_points": st.RawPoints,
		"panes":      st.Panes,
		"searches":   st.Searches,
		"candidates": st.Candidates,
		"ratio":      ratio,
	}); err != nil {
		log.Printf("stats encode: %v", err)
	}
}

func (s *server) plotSVG(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	f := s.st.Frame()
	s.mu.Unlock()
	if f == nil {
		http.Error(w, "no frame yet", http.StatusServiceUnavailable)
		return
	}
	doc, err := plot.SVGSeries(
		fmt.Sprintf("ASAP frame #%d (window %d)", f.Sequence, f.Window),
		880, 320,
		map[string][]float64{"smoothed": stats.ZScores(f.Values)},
		[]string{"smoothed"},
	)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, doc)
}

const dashboard = `<!DOCTYPE html>
<html><head><title>ASAP dashboard</title>
<meta http-equiv="refresh" content="2">
<style>body{font-family:sans-serif;margin:2em}</style></head>
<body>
<h2>ASAP streaming dashboard</h2>
<p>Auto-smoothed view of the incoming stream; refreshes every 2s.</p>
<img src="/plot.svg" alt="waiting for data..."/>
<p><a href="/frame">frame JSON</a> | <a href="/stats">stats JSON</a></p>
</body></html>
`

func (s *server) index(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html")
	fmt.Fprint(w, dashboard)
}

func main() {
	var (
		addr     = flag.String("addr", ":8347", "listen address")
		window   = flag.Int("window", 14400, "visualization window in raw points")
		res      = flag.Int("resolution", 800, "target display width in pixels")
		refresh  = flag.Int("refresh", 0, "refresh interval in raw points (0 = per aggregated point)")
		simulate = flag.String("simulate", "", "feed a built-in dataset (e.g. Taxi) at -rate points/sec")
		rate     = flag.Int("rate", 200, "simulation rate, points per second")
	)
	flag.Parse()

	st, err := asap.NewStreamer(asap.StreamConfig{
		WindowPoints: *window,
		Resolution:   *res,
		RefreshEvery: *refresh,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "asap-server: %v\n", err)
		os.Exit(1)
	}
	srv := &server{st: st}

	if *simulate != "" {
		spec, ok := datasets.ByName(*simulate)
		if !ok {
			fmt.Fprintf(os.Stderr, "asap-server: unknown dataset %q\n", *simulate)
			os.Exit(1)
		}
		go func() {
			values := spec.Generate(1).Values
			tick := time.NewTicker(time.Second / time.Duration(*rate))
			defer tick.Stop()
			i := 0
			for range tick.C {
				srv.mu.Lock()
				srv.st.Push(values[i%len(values)])
				srv.mu.Unlock()
				i++
			}
		}()
		log.Printf("simulating %s at %d pts/sec", *simulate, *rate)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/", srv.index)
	mux.HandleFunc("/ingest", srv.ingest)
	mux.HandleFunc("/frame", srv.frame)
	mux.HandleFunc("/stats", srv.stats)
	mux.HandleFunc("/plot.svg", srv.plotSVG)

	log.Printf("asap-server listening on %s (window %d pts, %d px)", *addr, *window, *res)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}

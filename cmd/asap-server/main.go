// Command asap-server runs ASAP in the server-side execution mode of
// Section 2: it ingests metric streams over HTTP and serves smoothed
// frames to visualization clients, plus a small self-contained
// dashboard. It fronts a sharded multi-series hub (internal/server):
// each series name maps to its own streaming operator, and series are
// spread across per-mutex shards so concurrent ingest into distinct
// series does not contend.
//
// Endpoints:
//
//	POST /ingest                line protocol (below) — appends points
//	GET  /frame?series=NAME     latest smoothed frame as JSON
//	GET  /series                live series listing as JSON
//	GET  /stats[?series=NAME]   aggregate + per-series + WAL counters
//	GET  /plot.svg?series=NAME  SVG of the current frame
//	GET  /healthz               hub size, WAL flush lag, last recovery
//	POST /snapshot              compact the WAL into a fresh checkpoint
//	GET  /                      embedded dashboard (auto-refreshing SVG)
//
// The ingest line protocol is one point per line: either "series=value"
// or a bare "value", which is routed to the default series (-series).
// Blank lines and #-comments are skipped. Bodies are all-or-nothing: a
// bad line rejects the whole batch with 400 and nothing is applied.
// Reads default to the default series when ?series= is omitted.
//
// With -data-dir set, ingest is durable: every acknowledged batch is
// appended to a per-shard write-ahead log (see docs/DURABILITY.md)
// before it is applied, and a restarted server warm-recovers all
// series — the next frames continue the pre-crash values and sequence
// numbers exactly. -fsync-every batches fsyncs (0 fsyncs per append);
// -segment-bytes tunes segment rotation.
//
// For demos, -simulate taxi feeds the built-in Taxi generator at a
// fixed rate so the dashboard animates without an external producer.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/asap-go/asap"
	"github.com/asap-go/asap/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8347", "listen address")
		window    = flag.Int("window", 14400, "visualization window in raw points")
		res       = flag.Int("resolution", 800, "target display width in pixels")
		refresh   = flag.Int("refresh", 0, "refresh interval in raw points (0 = per aggregated point)")
		shards    = flag.Int("shards", 0, "series lock shards (0 = GOMAXPROCS)")
		maxSeries = flag.Int("max-series", server.DefaultMaxSeries, "live series cap (LRU eviction beyond it)")
		series    = flag.String("series", server.DefaultSeriesName, "default series for bare-value ingest and reads")
		simulate  = flag.String("simulate", "", "feed a built-in dataset (e.g. Taxi) at -rate points/sec")
		rate      = flag.Int("rate", 200, "simulation rate, points per second")

		dataDir      = flag.String("data-dir", "", "write-ahead log directory for durable ingest (empty = memory only)")
		fsyncEvery   = flag.Duration("fsync-every", 100*time.Millisecond, "batch WAL fsyncs on this interval (0 = fsync every append)")
		segmentBytes = flag.Int64("segment-bytes", 8<<20, "rotate WAL segments at this size")
		maxBody      = flag.Int64("max-ingest-bytes", server.DefaultMaxIngestBytes, "largest accepted POST /ingest body (413 beyond)")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		Hub: server.HubConfig{
			Stream: asap.StreamConfig{
				WindowPoints: *window,
				Resolution:   *res,
				RefreshEvery: *refresh,
			},
			Shards:        *shards,
			MaxSeries:     *maxSeries,
			DefaultSeries: *series,
		},
		Simulate:       *simulate,
		Rate:           *rate,
		DataDir:        *dataDir,
		FsyncEvery:     *fsyncEvery,
		SegmentBytes:   *segmentBytes,
		MaxIngestBytes: *maxBody,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "asap-server: %v\n", err)
		os.Exit(1)
	}
	if st, ok := srv.WALStats(); ok {
		log.Printf("wal: %s: recovered %d series (%d points replayed, %d snapshots, %d corrupt records skipped) in %s",
			*dataDir, st.Recovery.SeriesRecovered, st.Recovery.PointsReplayed,
			st.Recovery.SnapshotsLoaded, st.Recovery.CorruptRecordsSkipped, st.Recovery.Duration)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *simulate != "" {
		log.Printf("simulating %s at %d pts/sec", *simulate, *rate)
	}
	log.Printf("asap-server listening on %s (window %d pts, %d px)", *addr, *window, *res)
	if err := srv.Run(ctx, *addr); err != nil {
		log.Fatal(err)
	}
}

package main

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"github.com/asap-go/asap"
)

func newTestServer(t *testing.T) *server {
	t.Helper()
	st, err := asap.NewStreamer(asap.StreamConfig{
		WindowPoints: 400,
		Resolution:   100,
		RefreshEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &server{st: st}
}

func feed(t *testing.T, s *server, n int) {
	t.Helper()
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(strconv.FormatFloat(math.Sin(2*math.Pi*float64(i)/40), 'g', -1, 64))
		b.WriteByte('\n')
	}
	req := httptest.NewRequest("POST", "/ingest", strings.NewReader(b.String()))
	w := httptest.NewRecorder()
	s.ingest(w, req)
	if w.Code != 200 {
		t.Fatalf("ingest status %d: %s", w.Code, w.Body.String())
	}
}

func TestIngestAndFrame(t *testing.T) {
	s := newTestServer(t)
	feed(t, s, 2000)

	w := httptest.NewRecorder()
	s.frame(w, httptest.NewRequest("GET", "/frame", nil))
	if w.Code != 200 {
		t.Fatalf("frame status %d", w.Code)
	}
	var f frameJSON
	if err := json.Unmarshal(w.Body.Bytes(), &f); err != nil {
		t.Fatalf("frame not JSON: %v", err)
	}
	if f.Window < 1 || len(f.Values) == 0 {
		t.Errorf("frame = %+v", f)
	}
}

func TestFrameBeforeData(t *testing.T) {
	s := newTestServer(t)
	w := httptest.NewRecorder()
	s.frame(w, httptest.NewRequest("GET", "/frame", nil))
	if strings.TrimSpace(w.Body.String()) != "null" {
		t.Errorf("empty frame = %q, want null", w.Body.String())
	}
}

func TestIngestRejectsGarbage(t *testing.T) {
	s := newTestServer(t)
	req := httptest.NewRequest("POST", "/ingest", strings.NewReader("1.5\nnot-a-number\n"))
	w := httptest.NewRecorder()
	s.ingest(w, req)
	if w.Code != 400 {
		t.Errorf("garbage ingest status %d, want 400", w.Code)
	}
}

func TestIngestRejectsGet(t *testing.T) {
	s := newTestServer(t)
	w := httptest.NewRecorder()
	s.ingest(w, httptest.NewRequest("GET", "/ingest", nil))
	if w.Code != 405 {
		t.Errorf("GET ingest status %d, want 405", w.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t)
	feed(t, s, 500)
	w := httptest.NewRecorder()
	s.stats(w, httptest.NewRequest("GET", "/stats", nil))
	var st map[string]interface{}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if st["raw_points"].(float64) != 500 {
		t.Errorf("raw_points = %v", st["raw_points"])
	}
	if st["ratio"].(float64) != 4 {
		t.Errorf("ratio = %v, want 4", st["ratio"])
	}
}

func TestPlotSVG(t *testing.T) {
	s := newTestServer(t)
	// Before data: 503.
	w := httptest.NewRecorder()
	s.plotSVG(w, httptest.NewRequest("GET", "/plot.svg", nil))
	if w.Code != 503 {
		t.Errorf("plot before data status %d, want 503", w.Code)
	}
	feed(t, s, 2000)
	w = httptest.NewRecorder()
	s.plotSVG(w, httptest.NewRequest("GET", "/plot.svg", nil))
	if w.Code != 200 || !strings.Contains(w.Body.String(), "<svg") {
		t.Errorf("plot status %d, body %q...", w.Code, w.Body.String()[:40])
	}
}

func TestDashboard(t *testing.T) {
	s := newTestServer(t)
	w := httptest.NewRecorder()
	s.index(w, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(w.Body.String(), "ASAP streaming dashboard") {
		t.Error("dashboard HTML missing")
	}
}
